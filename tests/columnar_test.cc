// End-to-end columnar-block equivalence tests (ctest label `columnar`).
//
// Every Fig-7 narrow-suite query, through both compilation routes, produces
// identical per-partition rows (hence identical placement), identical
// shuffle bytes, and identical pre-existing JobStats — including the PR-5
// keyed counters and the PR-7 flat-table counters — with
// ExecOptions::enable_columnar on and off, at 1, 4, and 8 threads. The
// columnar-only counters (columnar_bytes / column_to_row_conversions) are
// nonzero on and exactly zero off, they compose with enable_key_codec off
// (the legacy keyed route never packs blocks inside keyed operators, but
// shuffles and narrow stages still do), and they flow into EXPLAIN ANALYZE
// ("col(blocks=") and the JSON export.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "exec/bridge.h"
#include "exec/pipeline.h"
#include "nrc/interp.h"
#include "obs/explain.h"
#include "obs/export.h"
#include "runtime/cluster.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace trance {
namespace {

using nrc::Value;
using runtime::Dataset;
using runtime::JobStats;
using runtime::Row;
using runtime::StageStats;

runtime::ClusterConfig Config(int num_threads) {
  runtime::ClusterConfig c;
  c.num_partitions = 8;
  c.num_threads = num_threads;
  return c;
}

void ExpectSameRows(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.NumPartitions(), b.NumPartitions());
  for (size_t p = 0; p < a.NumPartitions(); ++p) {
    ASSERT_EQ(a.PartitionRowCount(p), b.PartitionRowCount(p))
        << "partition " << p;
    for (size_t i = 0; i < a.PartitionRowCount(p); ++i) {
      const Row ra = a.RowAt(p, i);
      const Row rb = b.RowAt(p, i);
      ASSERT_EQ(ra.fields.size(), rb.fields.size())
          << "partition " << p << " row " << i;
      for (size_t f = 0; f < ra.fields.size(); ++f) {
        EXPECT_EQ(ra.fields[f], rb.fields[f])
            << "partition " << p << " row " << i << " field " << f;
      }
    }
  }
}

/// Full JobStats equality except wall-clock and the columnar-only counters
/// (those are checked separately: nonzero on, zero off). Every pre-existing
/// counter — movement, fusion, keyed, and flat-table telemetry — must be
/// columnar-invariant.
void ExpectSameStats(const JobStats& a, const JobStats& b) {
  EXPECT_EQ(a.total_shuffle_bytes(), b.total_shuffle_bytes());
  EXPECT_EQ(a.max_stage_shuffle_bytes(), b.max_stage_shuffle_bytes());
  EXPECT_EQ(a.peak_partition_bytes(), b.peak_partition_bytes());
  EXPECT_EQ(a.fused_stages(), b.fused_stages());
  EXPECT_EQ(a.intermediate_bytes_avoided(), b.intermediate_bytes_avoided());
  EXPECT_EQ(a.sim_seconds(), b.sim_seconds());
  EXPECT_EQ(a.key_encode_bytes(), b.key_encode_bytes());
  EXPECT_EQ(a.hash_build_rows(), b.hash_build_rows());
  EXPECT_EQ(a.hash_probe_hits(), b.hash_probe_hits());
  EXPECT_EQ(a.hash_max_chain(), b.hash_max_chain());
  EXPECT_EQ(a.hash_table_bytes(), b.hash_table_bytes());
  EXPECT_EQ(a.hash_resizes(), b.hash_resizes());
  EXPECT_EQ(a.hash_probe_len_max(), b.hash_probe_len_max());
  ASSERT_EQ(a.stages().size(), b.stages().size());
  for (size_t i = 0; i < a.stages().size(); ++i) {
    const StageStats& sa = a.stages()[i];
    const StageStats& sb = b.stages()[i];
    SCOPED_TRACE("stage " + std::to_string(i) + " (" + sa.op + ")");
    EXPECT_EQ(sa.op, sb.op);
    EXPECT_EQ(sa.scope, sb.scope);
    EXPECT_EQ(sa.rows_in, sb.rows_in);
    EXPECT_EQ(sa.rows_out, sb.rows_out);
    EXPECT_EQ(sa.shuffle_bytes, sb.shuffle_bytes);
    EXPECT_EQ(sa.total_work_bytes, sb.total_work_bytes);
    EXPECT_EQ(sa.mem_high_water_bytes, sb.mem_high_water_bytes);
    EXPECT_EQ(sa.partition_work_bytes, sb.partition_work_bytes);
    EXPECT_EQ(sa.partition_recv_bytes, sb.partition_recv_bytes);
    EXPECT_EQ(sa.partition_send_bytes, sb.partition_send_bytes);
    EXPECT_EQ(sa.key_encode_bytes, sb.key_encode_bytes);
    EXPECT_EQ(sa.hash_build_rows, sb.hash_build_rows);
    EXPECT_EQ(sa.hash_probe_hits, sb.hash_probe_hits);
    EXPECT_EQ(sa.hash_max_chain, sb.hash_max_chain);
    EXPECT_EQ(sa.hash_table_bytes, sb.hash_table_bytes);
    EXPECT_EQ(sa.sim_seconds, sb.sim_seconds);
  }
}

std::map<std::string, Value> TpchValues(const tpch::TpchData& d) {
  auto conv = [](const tpch::Table& t) {
    auto v = exec::RowsToValue(t.rows, t.schema);
    TRANCE_CHECK(v.ok(), "table conversion");
    return std::move(v).value();
  };
  return {{"Region", conv(d.region)},     {"Nation", conv(d.nation)},
          {"Customer", conv(d.customer)}, {"Orders", conv(d.orders)},
          {"Lineitem", conv(d.lineitem)}, {"Part", conv(d.part)},
          {"Supplier", conv(d.supplier)}, {"Partsupp", conv(d.partsupp)}};
}

struct StandardModeRun {
  Dataset out;
  JobStats stats;
  std::string explain;
};

StandardModeRun RunStandardMode(const nrc::Program& q,
                                const std::map<std::string, Value>& values,
                                bool columnar, int threads,
                                bool key_codec = true) {
  runtime::Cluster cluster(Config(threads));
  exec::PipelineOptions opts;
  opts.exec.enable_columnar = columnar;
  opts.exec.enable_key_codec = key_codec;
  exec::Executor executor(&cluster, opts.exec);
  for (const auto& in : q.inputs) {
    auto v = values.find(in.name);
    TRANCE_CHECK(v != values.end(), "missing input");
    auto schema = runtime::Schema::FromBagType(in.type).ValueOrDie();
    auto rows = exec::ValueToRows(v->second, schema).ValueOrDie();
    auto ds = runtime::Source(&cluster, schema, std::move(rows), in.name)
                  .ValueOrDie();
    executor.Register(in.name, std::move(ds));
  }
  plan::PlanProgram compiled;
  StandardModeRun r;
  auto out = exec::RunStandard(q, &executor, opts, &compiled);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (out.ok()) r.out = std::move(out).value();
  r.stats = cluster.stats();
  r.explain = obs::ExplainAnalyze(compiled, r.stats);
  return r;
}

struct ShreddedModeRun {
  exec::ShreddedRun run;
  JobStats stats;
};

ShreddedModeRun RunShreddedMode(const nrc::Program& q,
                                const std::map<std::string, Value>& values,
                                bool columnar, int threads) {
  runtime::Cluster cluster(Config(threads));
  exec::PipelineOptions opts;
  opts.exec.enable_columnar = columnar;
  exec::Executor executor(&cluster, opts.exec);
  int64_t seed = 0;
  for (const auto& in : q.inputs) {
    auto v = values.find(in.name);
    TRANCE_CHECK(v != values.end(), "missing input");
    TRANCE_CHECK(
        exec::RegisterShreddedInput(&executor, in.name, in.type, v->second,
                                    seed)
            .ok(),
        "register shredded input");
    seed += 1000000;
  }
  plan::PlanProgram compiled;
  ShreddedModeRun r;
  auto run = exec::RunShredded(q, &executor, opts,
                               shred::MaterializeMode::kDomainElimination,
                               &compiled);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  if (run.ok()) r.run = std::move(run).value();
  r.stats = cluster.stats();
  return r;
}

void ExpectSameShreddedRows(const exec::ShreddedRun& a,
                            const exec::ShreddedRun& b) {
  ExpectSameRows(a.top, b.top);
  ASSERT_EQ(a.dicts.size(), b.dicts.size());
  for (size_t i = 0; i < a.dicts.size(); ++i) {
    SCOPED_TRACE("dict " + a.dicts[i].first);
    EXPECT_EQ(a.dicts[i].first, b.dicts[i].first);
    ExpectSameRows(a.dicts[i].second, b.dicts[i].second);
  }
}

class ColumnarSuiteTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  enum Kind { kFlatToNested = 0, kNestedToNested = 1, kNestedToFlat = 2 };

  StatusOr<nrc::Program> Query(Kind kind, int depth) {
    switch (kind) {
      case kFlatToNested:
        return tpch::FlatToNested(depth, tpch::Width::kNarrow);
      case kNestedToNested:
        return tpch::NestedToNested(depth, tpch::Width::kNarrow);
      case kNestedToFlat:
        return tpch::NestedToFlat(depth, tpch::Width::kNarrow);
    }
    return Status::Internal("bad kind");
  }

  std::map<std::string, Value> Inputs(Kind kind, int depth) {
    tpch::TpchConfig cfg;
    cfg.scale = 0.0005;
    auto values = TpchValues(tpch::Generate(cfg));
    if (kind == kFlatToNested) return values;
    auto prep = tpch::FlatToNested(depth, tpch::Width::kNarrow).ValueOrDie();
    nrc::Interpreter interp;
    auto nested = interp.EvalProgram(prep, values);
    TRANCE_CHECK(nested.ok(), "nested input prep");
    return {{"COP", nested->at("Q")}, {"Part", values.at("Part")}};
  }
};

TEST_P(ColumnarSuiteTest, StandardRouteOnOffIdentical) {
  auto [k, depth] = GetParam();
  Kind kind = static_cast<Kind>(k);
  auto q = Query(kind, depth);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto values = Inputs(kind, depth);

  StandardModeRun on1 = RunStandardMode(*q, values, true, 1);
  StandardModeRun on4 = RunStandardMode(*q, values, true, 4);
  StandardModeRun on8 = RunStandardMode(*q, values, true, 8);
  StandardModeRun off1 = RunStandardMode(*q, values, false, 1);
  StandardModeRun off4 = RunStandardMode(*q, values, false, 4);
  StandardModeRun off8 = RunStandardMode(*q, values, false, 8);

  // Each mode independently keeps the thread-count-independence contract —
  // the columnar-only counters included (per-partition slots are folded in
  // partition order, not completion order).
  ExpectSameRows(on1.out, on4.out);
  ExpectSameRows(on1.out, on8.out);
  ExpectSameStats(on1.stats, on4.stats);
  ExpectSameStats(on1.stats, on8.stats);
  EXPECT_EQ(on1.stats.columnar_bytes(), on4.stats.columnar_bytes());
  EXPECT_EQ(on1.stats.columnar_bytes(), on8.stats.columnar_bytes());
  EXPECT_EQ(on1.stats.column_to_row_conversions(),
            on4.stats.column_to_row_conversions());
  EXPECT_EQ(on1.stats.column_to_row_conversions(),
            on8.stats.column_to_row_conversions());
  ExpectSameRows(off1.out, off4.out);
  ExpectSameRows(off1.out, off8.out);
  ExpectSameStats(off1.stats, off4.stats);
  ExpectSameStats(off1.stats, off8.stats);

  // Across modes: identical rows in identical partitions (placement) and
  // identical pre-existing stats; only the columnar-only counters differ.
  ExpectSameRows(on1.out, off1.out);
  ExpectSameStats(on1.stats, off1.stats);
  EXPECT_GT(on1.stats.columnar_bytes(), 0u);
  EXPECT_EQ(off1.stats.columnar_bytes(), 0u);
  EXPECT_EQ(off1.stats.column_to_row_conversions(), 0u);
}

TEST_P(ColumnarSuiteTest, ShreddedRouteOnOffIdentical) {
  auto [k, depth] = GetParam();
  Kind kind = static_cast<Kind>(k);
  auto q = Query(kind, depth);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto values = Inputs(kind, depth);

  ShreddedModeRun on1 = RunShreddedMode(*q, values, true, 1);
  ShreddedModeRun on4 = RunShreddedMode(*q, values, true, 4);
  ShreddedModeRun on8 = RunShreddedMode(*q, values, true, 8);
  ShreddedModeRun off1 = RunShreddedMode(*q, values, false, 1);
  ShreddedModeRun off4 = RunShreddedMode(*q, values, false, 4);
  ShreddedModeRun off8 = RunShreddedMode(*q, values, false, 8);

  ExpectSameShreddedRows(on1.run, on4.run);
  ExpectSameShreddedRows(on1.run, on8.run);
  ExpectSameStats(on1.stats, on4.stats);
  ExpectSameStats(on1.stats, on8.stats);
  EXPECT_EQ(on1.stats.columnar_bytes(), on4.stats.columnar_bytes());
  EXPECT_EQ(on1.stats.columnar_bytes(), on8.stats.columnar_bytes());
  ExpectSameShreddedRows(off1.run, off4.run);
  ExpectSameShreddedRows(off1.run, off8.run);
  ExpectSameStats(off1.stats, off4.stats);
  ExpectSameStats(off1.stats, off8.stats);

  ExpectSameShreddedRows(on1.run, off1.run);
  ExpectSameStats(on1.stats, off1.stats);
  EXPECT_GT(on1.stats.columnar_bytes(), 0u);
  EXPECT_EQ(off1.stats.columnar_bytes(), 0u);
  EXPECT_EQ(off1.stats.column_to_row_conversions(), 0u);
}

std::string ColumnarParamName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kKinds[] = {"flat_to_nested", "nested_to_nested",
                                 "nested_to_flat"};
  return std::string(kKinds[std::get<0>(info.param)]) + "_depth" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Fig7NarrowSuite, ColumnarSuiteTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 2, 4)),
    ColumnarParamName);

// --- Flag composition and counter plumbing -------------------------------

TEST(ColumnarRuntimeTest, ComposesWithLegacyKeyRoute) {
  // With the key codec off (legacy KeyView containers) the keyed operators
  // hand off row-resident partitions, but shuffles and narrow stages still
  // run block-resident; results and every pre-existing stat stay identical
  // across all four flag settings.
  auto q = tpch::FlatToNested(2, tpch::Width::kNarrow);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  tpch::TpchConfig cfg;
  cfg.scale = 0.0005;
  auto values = TpchValues(tpch::Generate(cfg));

  StandardModeRun codec_col = RunStandardMode(*q, values, true, 1, true);
  StandardModeRun codec_row = RunStandardMode(*q, values, false, 1, true);
  StandardModeRun legacy_col = RunStandardMode(*q, values, true, 1, false);
  StandardModeRun legacy_row = RunStandardMode(*q, values, false, 1, false);

  ExpectSameRows(codec_col.out, codec_row.out);
  ExpectSameRows(codec_col.out, legacy_col.out);
  ExpectSameRows(codec_col.out, legacy_row.out);
  ExpectSameStats(codec_col.stats, codec_row.stats);
  // Legacy runs have different keyed counters (no codec), but within the
  // legacy route the columnar flag is still stats-transparent.
  ExpectSameStats(legacy_col.stats, legacy_row.stats);
  EXPECT_GT(legacy_col.stats.columnar_bytes(), 0u);
  EXPECT_EQ(legacy_row.stats.columnar_bytes(), 0u);
  // The encoded route keeps keyed-operator outputs block-resident on top of
  // the shared shuffle/stage blocks, so it accounts at least as many
  // columnar bytes.
  EXPECT_GE(codec_col.stats.columnar_bytes(),
            legacy_col.stats.columnar_bytes());
}

TEST(ColumnarRuntimeTest, BlockResidentRouteConvertsNothing) {
  // The tentpole property: with partitions block-resident end to end
  // (columnar on, keys encodable), no operator materializes a block-backed
  // input into retained rows — column_to_row_conversions is exactly zero
  // across the whole Fig-7 narrow suite. The counter itself still works: the
  // legacy keyed route (codec off) reads block-resident shuffle outputs into
  // its row-keyed containers and must report those materializations.
  uint64_t legacy_total = 0;
  for (int kind = 0; kind <= 2; ++kind) {
    for (int depth : {0, 2}) {
      SCOPED_TRACE("kind " + std::to_string(kind) + " depth " +
                   std::to_string(depth));
      auto q = kind == 0   ? tpch::FlatToNested(depth, tpch::Width::kNarrow)
               : kind == 1 ? tpch::NestedToNested(depth, tpch::Width::kNarrow)
                           : tpch::NestedToFlat(depth, tpch::Width::kNarrow);
      ASSERT_TRUE(q.ok()) << q.status().ToString();
      tpch::TpchConfig cfg;
      cfg.scale = 0.0005;
      auto values = TpchValues(tpch::Generate(cfg));
      if (kind != 0) {
        auto prep = tpch::FlatToNested(depth, tpch::Width::kNarrow).ValueOrDie();
        nrc::Interpreter interp;
        auto nested = interp.EvalProgram(prep, values);
        ASSERT_TRUE(nested.ok());
        values = {{"COP", nested->at("Q")}, {"Part", values.at("Part")}};
      }
      StandardModeRun on = RunStandardMode(*q, values, true, 1);
      EXPECT_GT(on.stats.columnar_bytes(), 0u);
      EXPECT_EQ(on.stats.column_to_row_conversions(), 0u);
      StandardModeRun legacy = RunStandardMode(*q, values, true, 1, false);
      legacy_total += legacy.stats.column_to_row_conversions();
    }
  }
  // A depth-0 flat query may run no keyed operator at all, but across the
  // suite the legacy containers materialize plenty of block-backed rows.
  EXPECT_GT(legacy_total, 0u);
}

TEST(ColumnarRuntimeTest, CountersVisibleInJsonAndExplain) {
  auto q = tpch::FlatToNested(2, tpch::Width::kNarrow);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  tpch::TpchConfig cfg;
  cfg.scale = 0.0005;
  auto values = TpchValues(tpch::Generate(cfg));
  StandardModeRun r = RunStandardMode(*q, values, true, 1);
  EXPECT_GT(r.stats.columnar_bytes(), 0u);

  std::string json = obs::JobStatsToJson(r.stats);
  EXPECT_NE(json.find("\"columnar_bytes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"column_to_row_conversions\""), std::string::npos)
      << json;

  EXPECT_NE(r.explain.find("col(blocks="), std::string::npos) << r.explain;

  // With the flag off the explain suffix disappears (counters are zero).
  StandardModeRun off = RunStandardMode(*q, values, false, 1);
  EXPECT_EQ(off.explain.find("col(blocks="), std::string::npos)
      << off.explain;
}

}  // namespace
}  // namespace trance
