// Flat open-addressing hash-table tests (ctest label `flathash`).
//
// Part 1 — table properties: on randomized encoded keys (with enough
// distinct keys to force several slot-array doublings) FlatKeyIndex agrees
// with a std::unordered_map oracle on membership, dense-index assignment,
// and FindOrInsert insert/hit classification; forced hash collisions
// (identical 64-bit hash, different bytes) stay distinct; the empty key
// (zero-length bytes) is a valid key; dense indices are stable for the
// table's lifetime (erase-less semantics) and KeyAt round-trips every
// inserted key byte-exactly through arena growth; StdKeyIndex satisfies the
// same contract with zeroed flat-only telemetry.
//
// Part 2 — end-to-end equivalence: every Fig-7 narrow-suite query, through
// both compilation routes, produces identical per-partition rows (hence
// identical placement), identical shuffle bytes, and identical pre-existing
// JobStats with the flat table on and off, at 1, 4, and 8 threads. The
// flat-only counters (hash_table_bytes / hash_resizes / hash_probe_len_max)
// are nonzero on and exactly zero off, and they flow into EXPLAIN ANALYZE
// ("flat(tbl=") and the JSON export.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/bridge.h"
#include "exec/pipeline.h"
#include "nrc/interp.h"
#include "obs/explain.h"
#include "obs/export.h"
#include "runtime/cluster.h"
#include "runtime/flat_hash.h"
#include "runtime/key_codec.h"
#include "runtime/ops.h"
#include "tpch/generator.h"
#include "tpch/queries.h"
#include "util/random.h"

namespace trance {
namespace {

using nrc::Value;
using runtime::Dataset;
using runtime::Field;
using runtime::JobStats;
using runtime::Row;
using runtime::StageStats;
namespace key_codec = runtime::key_codec;
using runtime::flat_hash::FlatKeyIndex;
using runtime::flat_hash::StdKeyIndex;

// --- Part 1: table properties -------------------------------------------

/// A hand-built owning key; hash is chosen by the test, not derived from the
/// bytes, so collisions can be forced at will.
key_codec::EncodedKey MakeKey(uint64_t hash, std::string bytes) {
  return key_codec::EncodedKey{hash, std::move(bytes)};
}

key_codec::EncodedKeyView View(const key_codec::EncodedKey& k) {
  return key_codec::EncodedKeyView{k.hash, k.bytes};
}

/// Random key material with odd, varied lengths (0..40 bytes) so arena
/// offsets land on every alignment and sanitizer builds would catch any
/// out-of-bounds memcmp against arena memory.
key_codec::EncodedKey RandomKey(Rng* rng, uint64_t key_space) {
  uint64_t id = rng->UniformRange(0, static_cast<int64_t>(key_space) - 1);
  std::string bytes = "key-" + std::to_string(id);
  size_t pad = static_cast<size_t>(id % 37);
  bytes.append(pad, static_cast<char>('a' + id % 26));
  return MakeKey(SplitMix64(id) ^ 0x9e3779b97f4a7c15ull, std::move(bytes));
}

template <class Index>
void OracleParityRun(uint64_t seed, uint64_t key_space, int ops) {
  Rng rng(static_cast<int64_t>(seed));
  Index idx;
  std::unordered_map<std::string, uint32_t> oracle;
  std::vector<std::string> dense_bytes;  // oracle for KeyAt / index stability
  for (int i = 0; i < ops; ++i) {
    key_codec::EncodedKey k = RandomKey(&rng, key_space);
    if (rng.UniformRange(0, 3) == 0) {
      // Probe-only path: must agree with the oracle and never insert.
      uint32_t got = idx.Find(View(k));
      auto it = oracle.find(k.bytes);
      if (it == oracle.end()) {
        EXPECT_EQ(got, Index::kNotFound) << "op " << i;
      } else {
        EXPECT_EQ(got, it->second) << "op " << i;
      }
      continue;
    }
    auto [gi, inserted] = idx.FindOrInsert(View(k));
    auto [it, fresh] = oracle.emplace(k.bytes, gi);
    EXPECT_EQ(inserted, fresh) << "op " << i;
    EXPECT_EQ(gi, it->second) << "op " << i;
    if (fresh) {
      // Dense first-insertion order: the i-th distinct key gets index i.
      EXPECT_EQ(gi, dense_bytes.size()) << "op " << i;
      dense_bytes.push_back(k.bytes);
    }
  }
  EXPECT_EQ(idx.size(), oracle.size());
  // Erase-less stable indices: every key still maps to its original index
  // and KeyAt round-trips the bytes even after all intervening resizes.
  for (uint32_t gi = 0; gi < dense_bytes.size(); ++gi) {
    key_codec::EncodedKeyView k = idx.KeyAt(gi);
    EXPECT_EQ(std::string(k.bytes), dense_bytes[gi]) << "index " << gi;
    EXPECT_EQ(idx.Find(k), gi) << "index " << gi;
  }
}

TEST(FlatHashTest, OracleParityWithResizes) {
  // 40k ops over ~6k distinct keys: the table doubles from 16 slots many
  // times while the probe/insert mix exercises every growth boundary.
  OracleParityRun<FlatKeyIndex>(42, 6000, 40000);
}

TEST(FlatHashTest, StdKeyIndexSatisfiesSameContract) {
  OracleParityRun<StdKeyIndex>(42, 6000, 40000);
}

TEST(FlatHashTest, ForcedHashCollisionsStayDistinct) {
  // Every key shares one 64-bit hash; the table must fall back to byte
  // comparison and keep all of them distinct via linear probing.
  FlatKeyIndex idx;
  constexpr uint64_t kHash = 0xDEADBEEFCAFEBABEull;
  constexpr int kKeys = 200;  // > kMinSlots, so collisions survive resizes
  for (int i = 0; i < kKeys; ++i) {
    key_codec::EncodedKey k = MakeKey(kHash, "collide-" + std::to_string(i));
    auto [gi, inserted] = idx.FindOrInsert(View(k));
    ASSERT_TRUE(inserted) << i;
    ASSERT_EQ(gi, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(idx.size(), static_cast<size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    key_codec::EncodedKey k = MakeKey(kHash, "collide-" + std::to_string(i));
    EXPECT_EQ(idx.Find(View(k)), static_cast<uint32_t>(i));
    auto [gi, inserted] = idx.FindOrInsert(View(k));
    EXPECT_FALSE(inserted);
    EXPECT_EQ(gi, static_cast<uint32_t>(i));
  }
  // Same hash, absent bytes: the whole collision chain is walked to a miss.
  key_codec::EncodedKey miss = MakeKey(kHash, "not-present");
  EXPECT_EQ(idx.Find(View(miss)), FlatKeyIndex::kNotFound);
  EXPECT_GE(idx.max_probe_len(), static_cast<uint64_t>(kKeys) - 1);
}

TEST(FlatHashTest, EmptyKeyIsAValidKey) {
  FlatKeyIndex idx;
  key_codec::EncodedKey empty = MakeKey(0, "");
  EXPECT_EQ(idx.Find(View(empty)), FlatKeyIndex::kNotFound);
  auto [gi, inserted] = idx.FindOrInsert(View(empty));
  EXPECT_TRUE(inserted);
  EXPECT_EQ(gi, 0u);
  auto [gi2, inserted2] = idx.FindOrInsert(View(empty));
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(gi2, 0u);
  EXPECT_EQ(idx.Find(View(empty)), 0u);
  EXPECT_EQ(idx.KeyAt(0).bytes.size(), 0u);
  // Zero-hash empty key must not merge with a nonempty zero-hash key.
  key_codec::EncodedKey other = MakeKey(0, "x");
  auto [gi3, inserted3] = idx.FindOrInsert(View(other));
  EXPECT_TRUE(inserted3);
  EXPECT_EQ(gi3, 1u);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(FlatHashTest, TelemetryCountsResizesAndFootprint) {
  FlatKeyIndex idx;
  EXPECT_EQ(idx.table_bytes(), 0u);
  EXPECT_EQ(idx.resizes(), 0u);
  uint64_t arena_bytes = 0;
  for (int i = 0; i < 5000; ++i) {
    key_codec::EncodedKey k =
        MakeKey(SplitMix64(static_cast<uint64_t>(i)), "k" + std::to_string(i));
    auto [gi, inserted] = idx.FindOrInsert(View(k));
    ASSERT_TRUE(inserted);
    arena_bytes += k.bytes.size();
  }
  // 5000 keys at 3/4 load need 8192 slots: 16 -> 8192 is 9 doublings.
  EXPECT_EQ(idx.resizes(), 9u);
  EXPECT_GT(idx.table_bytes(), arena_bytes);
  // Footprint is deterministic: an identical insertion sequence reproduces
  // it bit-exactly (the bench_diff kExact gate relies on this).
  FlatKeyIndex again;
  for (int i = 0; i < 5000; ++i) {
    key_codec::EncodedKey k =
        MakeKey(SplitMix64(static_cast<uint64_t>(i)), "k" + std::to_string(i));
    again.FindOrInsert(View(k));
  }
  EXPECT_EQ(again.table_bytes(), idx.table_bytes());
  EXPECT_EQ(again.resizes(), idx.resizes());

  // The pre-sized constructor absorbs the growth the default path performs.
  FlatKeyIndex sized(5000);
  for (int i = 0; i < 5000; ++i) {
    key_codec::EncodedKey k =
        MakeKey(SplitMix64(static_cast<uint64_t>(i)), "k" + std::to_string(i));
    sized.FindOrInsert(View(k));
  }
  EXPECT_EQ(sized.resizes(), 0u);
  EXPECT_EQ(sized.table_bytes(), idx.table_bytes());

  // StdKeyIndex reports the flat-only telemetry as zero.
  StdKeyIndex std_idx;
  std_idx.FindOrInsert(View(MakeKey(1, "a")));
  EXPECT_EQ(std_idx.table_bytes(), 0u);
  EXPECT_EQ(std_idx.resizes(), 0u);
  EXPECT_EQ(std_idx.max_probe_len(), 0u);
}

TEST(FlatHashTest, ArenaStressOddLengthsManyResizes) {
  // Adversarial arena layout: key lengths cycle through every residue mod
  // 37 (never aligned), with enough keys for ~12 slot-array doublings.
  // Sanitizer builds (ci/sanitize.sh runs this label) verify every memcmp
  // stays inside the arena; here we verify byte-exact round-trips.
  FlatKeyIndex idx;
  constexpr int kKeys = 30000;
  for (int i = 0; i < kKeys; ++i) {
    std::string bytes(static_cast<size_t>(i % 37), static_cast<char>(i % 251));
    bytes += std::to_string(i);
    auto [gi, inserted] =
        idx.FindOrInsert(View(MakeKey(SplitMix64(i * 2654435761ull), bytes)));
    ASSERT_TRUE(inserted) << i;
    ASSERT_EQ(gi, static_cast<uint32_t>(i));
  }
  EXPECT_GE(idx.resizes(), 11u);
  Rng rng(13);
  for (int t = 0; t < 2000; ++t) {
    uint32_t i = static_cast<uint32_t>(rng.UniformRange(0, kKeys - 1));
    std::string bytes(static_cast<size_t>(i % 37), static_cast<char>(i % 251));
    bytes += std::to_string(i);
    key_codec::EncodedKeyView got = idx.KeyAt(i);
    ASSERT_EQ(std::string(got.bytes), bytes) << i;
    EXPECT_EQ(idx.Find(View(MakeKey(SplitMix64(i * 2654435761ull), bytes))),
              i);
  }
}

// --- Part 2: end-to-end equivalence over the Fig-7 suite -----------------

runtime::ClusterConfig Config(int num_threads) {
  runtime::ClusterConfig c;
  c.num_partitions = 8;
  c.num_threads = num_threads;
  return c;
}

void ExpectSameRows(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.NumPartitions(), b.NumPartitions());
  for (size_t p = 0; p < a.NumPartitions(); ++p) {
    ASSERT_EQ(a.PartitionRowCount(p), b.PartitionRowCount(p))
        << "partition " << p;
    for (size_t i = 0; i < a.PartitionRowCount(p); ++i) {
      const Row ra = a.RowAt(p, i);
      const Row rb = b.RowAt(p, i);
      ASSERT_EQ(ra.fields.size(), rb.fields.size())
          << "partition " << p << " row " << i;
      for (size_t f = 0; f < ra.fields.size(); ++f) {
        EXPECT_EQ(ra.fields[f], rb.fields[f])
            << "partition " << p << " row " << i << " field " << f;
      }
    }
  }
}

/// Full JobStats equality except wall-clock and the flat-only table
/// counters (those are checked separately: nonzero on, zero off). Every
/// pre-existing counter — including the PR-5 keyed trio and encode bytes —
/// must be flat-hash-invariant.
void ExpectSameStats(const JobStats& a, const JobStats& b) {
  EXPECT_EQ(a.total_shuffle_bytes(), b.total_shuffle_bytes());
  EXPECT_EQ(a.max_stage_shuffle_bytes(), b.max_stage_shuffle_bytes());
  EXPECT_EQ(a.peak_partition_bytes(), b.peak_partition_bytes());
  EXPECT_EQ(a.fused_stages(), b.fused_stages());
  EXPECT_EQ(a.intermediate_bytes_avoided(), b.intermediate_bytes_avoided());
  EXPECT_EQ(a.sim_seconds(), b.sim_seconds());
  EXPECT_EQ(a.key_encode_bytes(), b.key_encode_bytes());
  EXPECT_EQ(a.hash_build_rows(), b.hash_build_rows());
  EXPECT_EQ(a.hash_probe_hits(), b.hash_probe_hits());
  EXPECT_EQ(a.hash_max_chain(), b.hash_max_chain());
  ASSERT_EQ(a.stages().size(), b.stages().size());
  for (size_t i = 0; i < a.stages().size(); ++i) {
    const StageStats& sa = a.stages()[i];
    const StageStats& sb = b.stages()[i];
    SCOPED_TRACE("stage " + std::to_string(i) + " (" + sa.op + ")");
    EXPECT_EQ(sa.op, sb.op);
    EXPECT_EQ(sa.scope, sb.scope);
    EXPECT_EQ(sa.rows_in, sb.rows_in);
    EXPECT_EQ(sa.rows_out, sb.rows_out);
    EXPECT_EQ(sa.shuffle_bytes, sb.shuffle_bytes);
    EXPECT_EQ(sa.total_work_bytes, sb.total_work_bytes);
    EXPECT_EQ(sa.mem_high_water_bytes, sb.mem_high_water_bytes);
    EXPECT_EQ(sa.partition_work_bytes, sb.partition_work_bytes);
    EXPECT_EQ(sa.key_encode_bytes, sb.key_encode_bytes);
    EXPECT_EQ(sa.hash_build_rows, sb.hash_build_rows);
    EXPECT_EQ(sa.hash_probe_hits, sb.hash_probe_hits);
    EXPECT_EQ(sa.hash_max_chain, sb.hash_max_chain);
    EXPECT_EQ(sa.sim_seconds, sb.sim_seconds);
  }
}

std::map<std::string, Value> TpchValues(const tpch::TpchData& d) {
  auto conv = [](const tpch::Table& t) {
    auto v = exec::RowsToValue(t.rows, t.schema);
    TRANCE_CHECK(v.ok(), "table conversion");
    return std::move(v).value();
  };
  return {{"Region", conv(d.region)},     {"Nation", conv(d.nation)},
          {"Customer", conv(d.customer)}, {"Orders", conv(d.orders)},
          {"Lineitem", conv(d.lineitem)}, {"Part", conv(d.part)},
          {"Supplier", conv(d.supplier)}, {"Partsupp", conv(d.partsupp)}};
}

struct StandardModeRun {
  Dataset out;
  JobStats stats;
  std::string explain;
};

StandardModeRun RunStandardMode(const nrc::Program& q,
                                const std::map<std::string, Value>& values,
                                bool flat, int threads) {
  runtime::Cluster cluster(Config(threads));
  exec::PipelineOptions opts;
  opts.exec.enable_flat_hash = flat;
  exec::Executor executor(&cluster, opts.exec);
  for (const auto& in : q.inputs) {
    auto v = values.find(in.name);
    TRANCE_CHECK(v != values.end(), "missing input");
    auto schema = runtime::Schema::FromBagType(in.type).ValueOrDie();
    auto rows = exec::ValueToRows(v->second, schema).ValueOrDie();
    auto ds = runtime::Source(&cluster, schema, std::move(rows), in.name)
                  .ValueOrDie();
    executor.Register(in.name, std::move(ds));
  }
  plan::PlanProgram compiled;
  StandardModeRun r;
  auto out = exec::RunStandard(q, &executor, opts, &compiled);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (out.ok()) r.out = std::move(out).value();
  r.stats = cluster.stats();
  r.explain = obs::ExplainAnalyze(compiled, r.stats);
  return r;
}

struct ShreddedModeRun {
  exec::ShreddedRun run;
  JobStats stats;
};

ShreddedModeRun RunShreddedMode(const nrc::Program& q,
                                const std::map<std::string, Value>& values,
                                bool flat, int threads) {
  runtime::Cluster cluster(Config(threads));
  exec::PipelineOptions opts;
  opts.exec.enable_flat_hash = flat;
  exec::Executor executor(&cluster, opts.exec);
  int64_t seed = 0;
  for (const auto& in : q.inputs) {
    auto v = values.find(in.name);
    TRANCE_CHECK(v != values.end(), "missing input");
    TRANCE_CHECK(
        exec::RegisterShreddedInput(&executor, in.name, in.type, v->second,
                                    seed)
            .ok(),
        "register shredded input");
    seed += 1000000;
  }
  plan::PlanProgram compiled;
  ShreddedModeRun r;
  auto run = exec::RunShredded(q, &executor, opts,
                               shred::MaterializeMode::kDomainElimination,
                               &compiled);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  if (run.ok()) r.run = std::move(run).value();
  r.stats = cluster.stats();
  return r;
}

void ExpectSameShreddedRows(const exec::ShreddedRun& a,
                            const exec::ShreddedRun& b) {
  ExpectSameRows(a.top, b.top);
  ASSERT_EQ(a.dicts.size(), b.dicts.size());
  for (size_t i = 0; i < a.dicts.size(); ++i) {
    SCOPED_TRACE("dict " + a.dicts[i].first);
    EXPECT_EQ(a.dicts[i].first, b.dicts[i].first);
    ExpectSameRows(a.dicts[i].second, b.dicts[i].second);
  }
}

class FlatHashSuiteTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  enum Kind { kFlatToNested = 0, kNestedToNested = 1, kNestedToFlat = 2 };

  StatusOr<nrc::Program> Query(Kind kind, int depth) {
    switch (kind) {
      case kFlatToNested:
        return tpch::FlatToNested(depth, tpch::Width::kNarrow);
      case kNestedToNested:
        return tpch::NestedToNested(depth, tpch::Width::kNarrow);
      case kNestedToFlat:
        return tpch::NestedToFlat(depth, tpch::Width::kNarrow);
    }
    return Status::Internal("bad kind");
  }

  std::map<std::string, Value> Inputs(Kind kind, int depth) {
    tpch::TpchConfig cfg;
    cfg.scale = 0.0005;
    auto values = TpchValues(tpch::Generate(cfg));
    if (kind == kFlatToNested) return values;
    auto prep = tpch::FlatToNested(depth, tpch::Width::kNarrow).ValueOrDie();
    nrc::Interpreter interp;
    auto nested = interp.EvalProgram(prep, values);
    TRANCE_CHECK(nested.ok(), "nested input prep");
    return {{"COP", nested->at("Q")}, {"Part", values.at("Part")}};
  }
};

TEST_P(FlatHashSuiteTest, StandardRouteOnOffIdentical) {
  auto [k, depth] = GetParam();
  Kind kind = static_cast<Kind>(k);
  auto q = Query(kind, depth);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto values = Inputs(kind, depth);

  StandardModeRun on1 = RunStandardMode(*q, values, true, 1);
  StandardModeRun on4 = RunStandardMode(*q, values, true, 4);
  StandardModeRun on8 = RunStandardMode(*q, values, true, 8);
  StandardModeRun off1 = RunStandardMode(*q, values, false, 1);
  StandardModeRun off4 = RunStandardMode(*q, values, false, 4);
  StandardModeRun off8 = RunStandardMode(*q, values, false, 8);

  // Each mode independently keeps the thread-count-independence contract —
  // the flat-only counters included (per-partition tables are slot-merged
  // in partition order, not completion order).
  ExpectSameRows(on1.out, on4.out);
  ExpectSameRows(on1.out, on8.out);
  ExpectSameStats(on1.stats, on4.stats);
  ExpectSameStats(on1.stats, on8.stats);
  EXPECT_EQ(on1.stats.hash_table_bytes(), on4.stats.hash_table_bytes());
  EXPECT_EQ(on1.stats.hash_table_bytes(), on8.stats.hash_table_bytes());
  EXPECT_EQ(on1.stats.hash_resizes(), on4.stats.hash_resizes());
  EXPECT_EQ(on1.stats.hash_probe_len_max(), on4.stats.hash_probe_len_max());
  ExpectSameRows(off1.out, off4.out);
  ExpectSameRows(off1.out, off8.out);
  ExpectSameStats(off1.stats, off4.stats);
  ExpectSameStats(off1.stats, off8.stats);

  // Across modes: identical rows in identical partitions (placement) and
  // identical pre-existing stats; only the flat-only counters differ.
  ExpectSameRows(on1.out, off1.out);
  ExpectSameStats(on1.stats, off1.stats);
  if (on1.stats.hash_build_rows() > 0) {
    EXPECT_GT(on1.stats.hash_table_bytes(), 0u);
  }
  EXPECT_EQ(off1.stats.hash_table_bytes(), 0u);
  EXPECT_EQ(off1.stats.hash_resizes(), 0u);
  EXPECT_EQ(off1.stats.hash_probe_len_max(), 0u);
}

TEST_P(FlatHashSuiteTest, ShreddedRouteOnOffIdentical) {
  auto [k, depth] = GetParam();
  Kind kind = static_cast<Kind>(k);
  auto q = Query(kind, depth);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto values = Inputs(kind, depth);

  ShreddedModeRun on1 = RunShreddedMode(*q, values, true, 1);
  ShreddedModeRun on4 = RunShreddedMode(*q, values, true, 4);
  ShreddedModeRun on8 = RunShreddedMode(*q, values, true, 8);
  ShreddedModeRun off1 = RunShreddedMode(*q, values, false, 1);
  ShreddedModeRun off4 = RunShreddedMode(*q, values, false, 4);
  ShreddedModeRun off8 = RunShreddedMode(*q, values, false, 8);

  ExpectSameShreddedRows(on1.run, on4.run);
  ExpectSameShreddedRows(on1.run, on8.run);
  ExpectSameStats(on1.stats, on4.stats);
  ExpectSameStats(on1.stats, on8.stats);
  EXPECT_EQ(on1.stats.hash_table_bytes(), on4.stats.hash_table_bytes());
  EXPECT_EQ(on1.stats.hash_table_bytes(), on8.stats.hash_table_bytes());
  ExpectSameShreddedRows(off1.run, off4.run);
  ExpectSameShreddedRows(off1.run, off8.run);
  ExpectSameStats(off1.stats, off4.stats);
  ExpectSameStats(off1.stats, off8.stats);

  ExpectSameShreddedRows(on1.run, off1.run);
  ExpectSameStats(on1.stats, off1.stats);
  EXPECT_EQ(off1.stats.hash_table_bytes(), 0u);
  EXPECT_EQ(off1.stats.hash_resizes(), 0u);
  EXPECT_EQ(off1.stats.hash_probe_len_max(), 0u);
}

std::string FlatHashParamName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kKinds[] = {"flat_to_nested", "nested_to_nested",
                                 "nested_to_flat"};
  return std::string(kKinds[std::get<0>(info.param)]) + "_depth" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Fig7NarrowSuite, FlatHashSuiteTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 2, 4)),
    FlatHashParamName);

// --- Counter plumbing ----------------------------------------------------

TEST(FlatHashRuntimeTest, DistinctOnOffIdenticalAndCounted) {
  auto run = [](bool flat) {
    runtime::Cluster cluster(Config(1));
    cluster.set_flat_hash_enabled(flat);
    std::vector<Row> rows;
    for (int64_t i = 0; i < 1000; ++i) {
      rows.push_back(Row({Field::Int(i % 100),
                          Field::Str("v" + std::to_string(i % 100))}));
    }
    runtime::Schema s(
        {{"k", nrc::Type::Int()}, {"v", nrc::Type::String()}});
    auto ds = runtime::Source(&cluster, s, std::move(rows), "in").ValueOrDie();
    cluster.stats().Reset();
    auto out = runtime::Distinct(&cluster, ds, "dedup").ValueOrDie();
    return std::make_pair(std::move(out), cluster.stats());
  };
  auto [on_out, on_stats] = run(true);
  auto [off_out, off_stats] = run(false);
  ExpectSameRows(on_out, off_out);
  EXPECT_EQ(on_out.NumRows(), 100u);
  const StageStats& on_stage = on_stats.stages().back();
  const StageStats& off_stage = off_stats.stages().back();
  // The PR-5 counters are implementation-invariant...
  EXPECT_EQ(on_stage.hash_build_rows, off_stage.hash_build_rows);
  EXPECT_EQ(on_stage.hash_probe_hits, off_stage.hash_probe_hits);
  EXPECT_EQ(on_stage.hash_max_chain, off_stage.hash_max_chain);
  EXPECT_EQ(on_stage.key_encode_bytes, off_stage.key_encode_bytes);
  // ...while the flat-only trio gates on the flag.
  EXPECT_GT(on_stage.hash_table_bytes, 0u);
  EXPECT_EQ(off_stage.hash_table_bytes, 0u);
  EXPECT_EQ(off_stage.hash_resizes, 0u);
  EXPECT_EQ(off_stage.hash_probe_len_max, 0u);
}

TEST(FlatHashRuntimeTest, CountersVisibleInJsonAndExplain) {
  auto q = tpch::FlatToNested(2, tpch::Width::kNarrow);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  tpch::TpchConfig cfg;
  cfg.scale = 0.0005;
  auto values = TpchValues(tpch::Generate(cfg));
  StandardModeRun r = RunStandardMode(*q, values, true, 1);
  EXPECT_GT(r.stats.hash_table_bytes(), 0u);

  std::string json = obs::JobStatsToJson(r.stats);
  EXPECT_NE(json.find("\"hash_table_bytes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"hash_resizes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"hash_probe_len_max\""), std::string::npos) << json;

  EXPECT_NE(r.explain.find("flat(tbl="), std::string::npos) << r.explain;

  // With the flag off the explain suffix disappears (counters are zero).
  StandardModeRun off = RunStandardMode(*q, values, false, 1);
  EXPECT_EQ(off.explain.find("flat(tbl="), std::string::npos) << off.explain;
}

}  // namespace
}  // namespace trance
