// Integration tests: the TPC-H benchmark query suite (all depths, both
// widths) and the biomedical E2E pipeline, each executed on the interpreter,
// the standard route, and the shredded route, checking 3-way agreement.
#include <gtest/gtest.h>

#include "biomed/generator.h"
#include "biomed/pipeline.h"
#include "exec/bridge.h"
#include "exec/pipeline.h"
#include "nrc/interp.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace trance {
namespace {

using nrc::ApproxDeepBagEquals;
using nrc::Program;
using nrc::Value;

std::map<std::string, Value> TpchValues(const tpch::TpchData& d) {
  auto conv = [](const tpch::Table& t) {
    auto v = exec::RowsToValue(t.rows, t.schema);
    TRANCE_CHECK(v.ok(), "table conversion");
    return std::move(v).value();
  };
  return {{"Region", conv(d.region)},     {"Nation", conv(d.nation)},
          {"Customer", conv(d.customer)}, {"Orders", conv(d.orders)},
          {"Lineitem", conv(d.lineitem)}, {"Part", conv(d.part)},
          {"Supplier", conv(d.supplier)}, {"Partsupp", conv(d.partsupp)}};
}

/// Interpreter == standard == shredded on the given program/inputs.
void ExpectThreeWayAgreement(const Program& program,
                             const std::map<std::string, Value>& inputs,
                             const std::string& what) {
  nrc::Interpreter interp;
  auto oracle = interp.EvalProgram(program, inputs);
  ASSERT_TRUE(oracle.ok()) << what << ": " << oracle.status().ToString();
  const Value& expected = oracle->at(program.result().var);

  {
    runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 4});
    auto got = exec::RunStandardOnValues(program, inputs, &cluster, {});
    ASSERT_TRUE(got.ok()) << what << " standard: " << got.status().ToString();
    EXPECT_TRUE(ApproxDeepBagEquals(expected, *got)) << what << " standard";
  }
  {
    runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 4});
    auto got = exec::RunShreddedOnValues(program, inputs, &cluster, {});
    ASSERT_TRUE(got.ok()) << what << " shredded: " << got.status().ToString();
    EXPECT_TRUE(ApproxDeepBagEquals(expected, *got)) << what << " shredded";
  }
}

class TpchSuiteTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TpchSuiteTest, FlatToNestedThreeWay) {
  auto [depth, w] = GetParam();
  tpch::Width width = w == 0 ? tpch::Width::kNarrow : tpch::Width::kWide;
  tpch::TpchConfig cfg;
  cfg.scale = 0.00025;
  auto data = tpch::Generate(cfg);
  auto program = tpch::FlatToNested(depth, width);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ExpectThreeWayAgreement(*program, TpchValues(data),
                          "flat_to_nested d=" + std::to_string(depth));
}

TEST_P(TpchSuiteTest, NestedToNestedThreeWay) {
  auto [depth, w] = GetParam();
  tpch::Width width = w == 0 ? tpch::Width::kNarrow : tpch::Width::kWide;
  tpch::TpchConfig cfg;
  cfg.scale = 0.00025;
  auto data = tpch::Generate(cfg);
  // Prepare the nested input by evaluating the flat-to-nested query.
  auto prep = tpch::FlatToNested(depth, width);
  ASSERT_TRUE(prep.ok());
  nrc::Interpreter interp;
  auto values = TpchValues(data);
  auto nested = interp.EvalProgram(*prep, values);
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();

  auto program = tpch::NestedToNested(depth, width);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  std::map<std::string, Value> inputs{{"COP", nested->at("Q")},
                                      {"Part", values.at("Part")}};
  ExpectThreeWayAgreement(*program, inputs,
                          "nested_to_nested d=" + std::to_string(depth));
}

TEST_P(TpchSuiteTest, NestedToFlatThreeWay) {
  auto [depth, w] = GetParam();
  tpch::Width width = w == 0 ? tpch::Width::kNarrow : tpch::Width::kWide;
  tpch::TpchConfig cfg;
  cfg.scale = 0.00025;
  auto data = tpch::Generate(cfg);
  auto prep = tpch::FlatToNested(depth, width);
  ASSERT_TRUE(prep.ok());
  nrc::Interpreter interp;
  auto values = TpchValues(data);
  auto nested = interp.EvalProgram(*prep, values);
  ASSERT_TRUE(nested.ok());

  auto program = tpch::NestedToFlat(depth, width);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  std::map<std::string, Value> inputs{{"COP", nested->at("Q")},
                                      {"Part", values.at("Part")}};
  ExpectThreeWayAgreement(*program, inputs,
                          "nested_to_flat d=" + std::to_string(depth));
}

INSTANTIATE_TEST_SUITE_P(
    AllDepthsAndWidths, TpchSuiteTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(0, 1)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "depth" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == 0 ? "narrow" : "wide");
    });

TEST(TpchGeneratorTest, RowCountsScale) {
  tpch::TpchConfig cfg;
  cfg.scale = 0.001;
  auto d = tpch::Generate(cfg);
  EXPECT_EQ(d.region.rows.size(), 5u);
  EXPECT_EQ(d.nation.rows.size(), 25u);
  EXPECT_EQ(d.customer.rows.size(), 150u);
  EXPECT_EQ(d.orders.rows.size(), 1500u);
  EXPECT_EQ(d.lineitem.rows.size(), 6000u);
  EXPECT_EQ(d.part.rows.size(), 200u);
}

TEST(TpchGeneratorTest, SkewConcentratesKeys) {
  tpch::TpchConfig cfg;
  cfg.scale = 0.001;
  cfg.skew = 2.0;
  auto skewed = tpch::Generate(cfg);
  cfg.skew = 0.0;
  auto uniform = tpch::Generate(cfg);
  auto max_orderkey_freq = [](const tpch::Table& li) {
    std::map<int64_t, size_t> freq;
    for (const auto& r : li.rows) ++freq[r.fields[1].AsInt()];  // partkey
    size_t mx = 0;
    for (auto& [k, c] : freq) mx = std::max(mx, c);
    return mx;
  };
  EXPECT_GT(max_orderkey_freq(skewed.lineitem),
            10 * max_orderkey_freq(uniform.lineitem));
}

TEST(TpchGeneratorTest, Deterministic) {
  tpch::TpchConfig cfg;
  cfg.scale = 0.0005;
  auto a = tpch::Generate(cfg);
  auto b = tpch::Generate(cfg);
  ASSERT_EQ(a.lineitem.rows.size(), b.lineitem.rows.size());
  for (size_t i = 0; i < a.lineitem.rows.size(); ++i) {
    EXPECT_TRUE(runtime::RowEquals(a.lineitem.rows[i], b.lineitem.rows[i]));
  }
}

std::map<std::string, Value> BiomedValues(const biomed::BiomedData& d) {
  auto conv = [](const runtime::Schema& s, const std::vector<runtime::Row>& r) {
    auto v = exec::RowsToValue(r, s);
    TRANCE_CHECK(v.ok(), "biomed conversion");
    return std::move(v).value();
  };
  return {{"BN2", conv(d.bn2_schema, d.bn2)},
          {"BN1", conv(d.bn1_schema, d.bn1)},
          {"BF1", conv(d.bf1_schema, d.bf1)},
          {"BF2", conv(d.bf2_schema, d.bf2)},
          {"BF3", conv(d.bf3_schema, d.bf3)}};
}

biomed::BiomedConfig TinyBiomed() {
  biomed::BiomedConfig cfg;
  cfg.samples = 8;
  cfg.genes = 30;
  cfg.mutations_per_sample = 5;
  cfg.network_edges = 120;
  return cfg;
}

TEST(BiomedTest, StepProgramsThreeWay) {
  auto data = biomed::Generate(TinyBiomed());
  auto inputs = BiomedValues(data);
  // Execute steps incrementally, feeding each oracle output forward.
  nrc::Interpreter interp;
  std::map<std::string, Value> env = inputs;
  for (int step = 1; step <= biomed::kNumSteps; ++step) {
    auto program = biomed::StepProgram(step);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    ExpectThreeWayAgreement(*program, env, "Step" + std::to_string(step));
    auto out = interp.EvalProgram(*program, env);
    ASSERT_TRUE(out.ok());
    env["Step" + std::to_string(step)] =
        out->at("Step" + std::to_string(step));
  }
}

TEST(BiomedTest, FullPipelineThreeWay) {
  auto data = biomed::Generate(TinyBiomed());
  ExpectThreeWayAgreement(biomed::E2EProgram(), BiomedValues(data), "E2E");
}

TEST(BiomedTest, GeneratorShapes) {
  auto cfg = biomed::BiomedConfig::Small();
  auto d = biomed::Generate(cfg);
  EXPECT_EQ(d.bn2.size(), static_cast<size_t>(cfg.samples));
  EXPECT_EQ(d.bn1.size(), static_cast<size_t>(cfg.samples));
  EXPECT_EQ(d.bf3.size(), static_cast<size_t>(cfg.so_terms));
  // Total mutations match the budget.
  size_t total = 0;
  // mutations bag sits after the sample metadata columns
  int mcol = d.bn2_schema.IndexOf("mutations");
  ASSERT_GE(mcol, 0);
  for (const auto& r : d.bn2) {
    total += r.fields[static_cast<size_t>(mcol)].AsBag()->size();
  }
  EXPECT_EQ(total,
            static_cast<size_t>(cfg.samples * cfg.mutations_per_sample));
}

TEST(BiomedTest, MutationSkewConcentrates) {
  auto cfg = TinyBiomed();
  cfg.mutation_skew = 3.0;
  auto skewed = biomed::Generate(cfg);
  size_t mx = 0;
  int mcol = skewed.bn2_schema.IndexOf("mutations");
  ASSERT_GE(mcol, 0);
  for (const auto& r : skewed.bn2) {
    mx = std::max(mx, r.fields[static_cast<size_t>(mcol)].AsBag()->size());
  }
  // With strong Zipf skew one sample holds most of the budget.
  EXPECT_GT(mx, static_cast<size_t>(cfg.mutations_per_sample * 3));
}

}  // namespace
}  // namespace trance
