// Unit tests for the distributed runtime simulator: partitioning guarantees,
// exact shuffle accounting, joins, nest/aggregate, unnest, memory caps.
#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "runtime/ops.h"

namespace trance {
namespace runtime {
namespace {

Schema KvSchema() {
  return Schema({{"k", nrc::Type::Int()}, {"v", nrc::Type::Int()}});
}

std::vector<Row> KvRows(std::vector<std::pair<int64_t, int64_t>> kv) {
  std::vector<Row> rows;
  rows.reserve(kv.size());
  for (auto [k, v] : kv) {
    rows.push_back(Row({Field::Int(k), Field::Int(v)}));
  }
  return rows;
}

TEST(FieldTest, EqualityAndHash) {
  EXPECT_EQ(Field::Int(3), Field::Int(3));
  EXPECT_NE(Field::Int(3), Field::Int(4));
  EXPECT_EQ(Field::Int(3), Field::Real(3.0));  // numeric cross-compare
  EXPECT_EQ(Field::Str("x"), Field::Str("x"));
  EXPECT_EQ(Field::Null(), Field::Null());
  EXPECT_NE(Field::Null(), Field::Int(0));
  Field l1 = MakeLabel({{"a", Field::Int(1)}});
  Field l2 = MakeLabel({{"a", Field::Int(1)}});
  EXPECT_EQ(l1, l2);
  EXPECT_EQ(l1.Hash(), l2.Hash());
}

TEST(FieldTest, LabelCollapse) {
  Field inner = MakeLabel({{"id", Field::Int(5)}});
  Field wrapped = MakeLabel({{"x", inner}});
  EXPECT_EQ(inner, wrapped);
}

TEST(FieldTest, BagMultisetEquality) {
  Field a = Field::Bag({Row({Field::Int(1)}), Row({Field::Int(2)})});
  Field b = Field::Bag({Row({Field::Int(2)}), Row({Field::Int(1)})});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(FieldTest, DeepSizeCountsNestedBags) {
  Field shallow = Field::Int(1);
  Field deep = Field::Bag(
      {Row({Field::Str(std::string(100, 'x'))}), Row({Field::Int(2)})});
  EXPECT_GT(deep.DeepSize(), shallow.DeepSize() + 100);
}

TEST(OpsTest, SourceDistributesRoundRobin) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  auto ds = Source(&cluster, KvSchema(), KvRows({{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}}),
                   "in");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->NumRows(), 5u);
  EXPECT_EQ(ds->NumPartitions(), 4u);
  EXPECT_EQ(ds->partitioning.kind, Partitioning::Kind::kNone);
}

TEST(OpsTest, RepartitionColocatesKeys) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  auto ds = Source(&cluster, KvSchema(),
                   KvRows({{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}}), "in")
                .ValueOrDie();
  auto parted = Repartition(&cluster, ds, {0}, "repart");
  ASSERT_TRUE(parted.ok());
  // All rows with the same key must land in one partition.
  for (size_t pi = 0; pi < parted->NumPartitions(); ++pi) {
    const std::vector<Row> p = parted->PartitionRows(pi);
    std::set<int64_t> keys;
    for (const auto& r : p) keys.insert(r.fields[0].AsInt());
    for (int64_t k : keys) {
      size_t count = 0;
      for (size_t qi = 0; qi < parted->NumPartitions(); ++qi) {
        for (const auto& r : parted->PartitionRows(qi)) {
          if (r.fields[0].AsInt() == k) ++count;
        }
      }
      size_t local = 0;
      for (const auto& r : p) {
        if (r.fields[0].AsInt() == k) ++local;
      }
      EXPECT_EQ(local, count);
    }
  }
  EXPECT_TRUE(parted->partitioning.IsHashOn({0}));
}

TEST(OpsTest, RepartitionOnExistingGuaranteeShufflesNothing) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  auto ds = Source(&cluster, KvSchema(), KvRows({{1, 1}, {2, 2}, {3, 3}}), "in")
                .ValueOrDie();
  auto p1 = Repartition(&cluster, ds, {0}, "r1").ValueOrDie();
  uint64_t before = cluster.stats().total_shuffle_bytes();
  auto p2 = Repartition(&cluster, p1, {0}, "r2").ValueOrDie();
  EXPECT_EQ(cluster.stats().total_shuffle_bytes(), before);
}

TEST(OpsTest, RepartitionOnPermutedKeysShufflesNothing) {
  // The partitioner combines per-column hashes commutatively, so a hash
  // guarantee on {a,b} covers a request for {b,a}: same placement, no
  // movement.
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  Schema schema({{"a", nrc::Type::Int()},
                 {"b", nrc::Type::Int()},
                 {"v", nrc::Type::Int()}});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 40; ++i) {
    rows.push_back(Row({Field::Int(i % 7), Field::Int(i % 5), Field::Int(i)}));
  }
  auto ds = Source(&cluster, schema, std::move(rows), "in").ValueOrDie();
  auto p1 = Repartition(&cluster, ds, {0, 1}, "r1").ValueOrDie();
  EXPECT_TRUE(p1.partitioning.IsHashOn({1, 0}));
  uint64_t before = cluster.stats().total_shuffle_bytes();
  auto p2 = Repartition(&cluster, p1, {1, 0}, "r2").ValueOrDie();
  EXPECT_EQ(cluster.stats().total_shuffle_bytes(), before);
  // Placement under the permuted guarantee must match hashing on the
  // permuted key list exactly (reuse must not mis-place any row).
  for (size_t p = 0; p < p2.NumPartitions(); ++p) {
    for (const auto& r : p2.PartitionRows(p)) {
      EXPECT_EQ(static_cast<size_t>(cluster.PartitionOf(RowHashOn(r, {1, 0}))),
                p);
    }
  }
}

TEST(OpsTest, HashJoinReusesPermutedPartitioning) {
  // A left side already hashed on {1,0} joins on keys {0,1} without moving:
  // the permuted guarantee is accepted and the join still colocates equal
  // keys from the right side.
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  Schema ls({{"a", nrc::Type::Int()},
             {"b", nrc::Type::Int()},
             {"v", nrc::Type::Int()}});
  std::vector<Row> lrows;
  for (int64_t i = 0; i < 30; ++i) {
    lrows.push_back(
        Row({Field::Int(i % 6), Field::Int(i % 4), Field::Int(i)}));
  }
  auto l = Source(&cluster, ls, std::move(lrows), "l").ValueOrDie();
  auto lp = Repartition(&cluster, l, {1, 0}, "lp").ValueOrDie();
  Schema rs({{"x", nrc::Type::Int()},
             {"y", nrc::Type::Int()},
             {"w", nrc::Type::Int()}});
  std::vector<Row> rrows;
  for (int64_t i = 0; i < 24; ++i) {
    rrows.push_back(
        Row({Field::Int(i % 6), Field::Int(i % 4), Field::Int(100 + i)}));
  }
  auto r = Source(&cluster, rs, std::move(rrows), "r").ValueOrDie();
  uint64_t before = cluster.stats().total_shuffle_bytes();
  auto j =
      HashJoin(&cluster, lp, r, {0, 1}, {0, 1}, JoinType::kInner, "join");
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  // Only the right side moved; the permuted left guarantee was reused.
  uint64_t right_size = r.DeepSizeBytes();
  EXPECT_LE(cluster.stats().total_shuffle_bytes() - before, right_size);
  // Exact expected multiplicity: keys match when (a,b) == (x,y).
  size_t expected = 0;
  for (const auto& lr : l.Collect()) {
    for (const auto& rr : r.Collect()) {
      if (lr.fields[0] == rr.fields[0] && lr.fields[1] == rr.fields[1]) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(j->NumRows(), expected);
}

TEST(OpsTest, HashJoinInner) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  auto l = Source(&cluster, KvSchema(), KvRows({{1, 10}, {2, 20}, {3, 30}}),
                  "l")
               .ValueOrDie();
  auto r = Source(&cluster,
                  Schema({{"k2", nrc::Type::Int()}, {"w", nrc::Type::Int()}}),
                  KvRows({{1, 100}, {1, 101}, {4, 400}}), "r")
               .ValueOrDie();
  auto j = HashJoin(&cluster, l, r, {0}, {0}, JoinType::kInner, "join");
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  EXPECT_EQ(j->NumRows(), 2u);  // key 1 matches twice
  EXPECT_EQ(j->schema.size(), 4u);
  EXPECT_EQ(j->schema.col(2).name, "k2");
}

TEST(OpsTest, HashJoinLeftOuterNullPads) {
  Cluster cluster(ClusterConfig{.num_partitions = 2});
  auto l = Source(&cluster, KvSchema(), KvRows({{1, 10}, {2, 20}}), "l")
               .ValueOrDie();
  auto r = Source(&cluster,
                  Schema({{"k2", nrc::Type::Int()}, {"w", nrc::Type::Int()}}),
                  KvRows({{1, 100}}), "r")
               .ValueOrDie();
  auto j = HashJoin(&cluster, l, r, {0}, {0}, JoinType::kLeftOuter, "join");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->NumRows(), 2u);
  bool saw_null = false;
  for (const auto& row : j->Collect()) {
    if (row.fields[0].AsInt() == 2) {
      EXPECT_TRUE(row.fields[2].is_null());
      EXPECT_TRUE(row.fields[3].is_null());
      saw_null = true;
    }
  }
  EXPECT_TRUE(saw_null);
}

TEST(OpsTest, JoinNameCollisionSuffixed) {
  Cluster cluster(ClusterConfig{.num_partitions = 2});
  auto l = Source(&cluster, KvSchema(), KvRows({{1, 10}}), "l").ValueOrDie();
  auto r = Source(&cluster, KvSchema(), KvRows({{1, 20}}), "r").ValueOrDie();
  auto j = HashJoin(&cluster, l, r, {0}, {0}, JoinType::kInner, "join")
               .ValueOrDie();
  EXPECT_EQ(j.schema.col(2).name, "k__r");
  EXPECT_EQ(j.schema.col(3).name, "v__r");
}

TEST(OpsTest, BroadcastJoinLeavesLeftInPlace) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  auto l = Source(&cluster, KvSchema(),
                  KvRows({{1, 10}, {2, 20}, {3, 30}, {4, 40}}), "l")
               .ValueOrDie();
  auto lp = Repartition(&cluster, l, {1}, "by_v").ValueOrDie();
  auto r = Source(&cluster,
                  Schema({{"k2", nrc::Type::Int()}, {"w", nrc::Type::Int()}}),
                  KvRows({{1, 100}, {2, 200}}), "r")
               .ValueOrDie();
  auto j = BroadcastJoin(&cluster, lp, r, {0}, {0}, JoinType::kInner, "bjoin");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->NumRows(), 2u);
  // Left partitioning guarantee (on v) preserved.
  EXPECT_TRUE(j->partitioning.IsHashOn({1}));
}

TEST(OpsTest, NestGroupBuildsBags) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  auto ds = Source(&cluster, KvSchema(),
                   KvRows({{1, 10}, {1, 11}, {2, 20}}), "in")
                .ValueOrDie();
  auto nested = NestGroup(&cluster, ds, {0}, {1}, "vals", "nest");
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->NumRows(), 2u);
  for (const auto& row : nested->Collect()) {
    if (row.fields[0].AsInt() == 1) {
      EXPECT_EQ(row.fields[1].AsBag()->size(), 2u);
    } else {
      EXPECT_EQ(row.fields[1].AsBag()->size(), 1u);
    }
  }
}

TEST(OpsTest, NestGroupCastsNullToEmptyBag) {
  Cluster cluster(ClusterConfig{.num_partitions = 2});
  std::vector<Row> rows;
  rows.push_back(Row({Field::Int(1), Field::Int(10)}));
  rows.push_back(Row({Field::Int(2), Field::Null()}));  // outer-join miss
  auto ds = Source(&cluster, KvSchema(), std::move(rows), "in").ValueOrDie();
  auto nested = NestGroup(&cluster, ds, {0}, {1}, "vals", "nest").ValueOrDie();
  for (const auto& row : nested.Collect()) {
    if (row.fields[0].AsInt() == 2) {
      EXPECT_TRUE(row.fields[1].AsBag()->empty());
    } else {
      EXPECT_EQ(row.fields[1].AsBag()->size(), 1u);
    }
  }
}

TEST(OpsTest, SumAggregateMissMarkers) {
  Cluster cluster(ClusterConfig{.num_partitions = 2});
  std::vector<Row> rows;
  rows.push_back(Row({Field::Int(1), Field::Int(10)}));
  rows.push_back(Row({Field::Int(1), Field::Int(5)}));
  // All-NULL values: an outer-operator miss — the group must exist but carry
  // NULL so a downstream Gamma-union can cast it to an empty bag.
  rows.push_back(Row({Field::Int(2), Field::Null()}));
  auto ds = Source(&cluster, KvSchema(), std::move(rows), "in").ValueOrDie();
  auto agg = SumAggregate(&cluster, ds, {0}, {1}, true, "sum").ValueOrDie();
  EXPECT_EQ(agg.NumRows(), 2u);
  for (const auto& row : agg.Collect()) {
    if (row.fields[0].AsInt() == 1) {
      EXPECT_EQ(row.fields[1].AsInt(), 15);
    } else {
      EXPECT_TRUE(row.fields[1].is_null());
    }
  }
}

TEST(OpsTest, SumAggregateMissMarkersSurviveCombine) {
  // The miss-marker rule must behave identically with and without map-side
  // combine, including when markers and real rows land in different
  // partitions pre-shuffle.
  for (bool combine : {true, false}) {
    Cluster cluster(ClusterConfig{.num_partitions = 4});
    std::vector<Row> rows;
    for (int i = 0; i < 8; ++i) {
      rows.push_back(Row({Field::Int(1), Field::Int(1)}));
      rows.push_back(Row({Field::Int(1), Field::Null()}));
    }
    rows.push_back(Row({Field::Int(2), Field::Null()}));
    auto ds = Source(&cluster, KvSchema(), std::move(rows), "in").ValueOrDie();
    auto agg =
        SumAggregate(&cluster, ds, {0}, {1}, combine, "sum").ValueOrDie();
    EXPECT_EQ(agg.NumRows(), 2u);
    for (const auto& row : agg.Collect()) {
      if (row.fields[0].AsInt() == 1) {
        EXPECT_EQ(row.fields[1].AsInt(), 8) << "combine=" << combine;
      } else {
        EXPECT_TRUE(row.fields[1].is_null()) << "combine=" << combine;
      }
    }
  }
}

TEST(OpsTest, AddIndexColumnUniqueIds) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  auto ds = Source(&cluster, KvSchema(),
                   KvRows({{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}}), "in")
                .ValueOrDie();
  auto idx = AddIndexColumn(&cluster, ds, "uid", "idx").ValueOrDie();
  EXPECT_EQ(idx.schema.size(), 3u);
  std::set<int64_t> ids;
  for (const auto& row : idx.Collect()) {
    ids.insert(row.fields[2].AsInt());
  }
  EXPECT_EQ(ids.size(), 5u);
}

TEST(OpsTest, MapSideCombineShufflesLess) {
  ClusterConfig cfg{.num_partitions = 8};
  // Many duplicate keys: combining should cut shuffle volume.
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int i = 0; i < 1000; ++i) kv.push_back({i % 4, 1});
  {
    Cluster c1(cfg);
    auto ds = Source(&c1, KvSchema(), KvRows(kv), "in").ValueOrDie();
    uint64_t base = c1.stats().total_shuffle_bytes();
    SumAggregate(&c1, ds, {0}, {1}, true, "sum").ValueOrDie();
    uint64_t combined = c1.stats().total_shuffle_bytes() - base;
    Cluster c2(cfg);
    auto ds2 = Source(&c2, KvSchema(), KvRows(kv), "in").ValueOrDie();
    uint64_t base2 = c2.stats().total_shuffle_bytes();
    SumAggregate(&c2, ds2, {0}, {1}, false, "sum").ValueOrDie();
    uint64_t uncombined = c2.stats().total_shuffle_bytes() - base2;
    EXPECT_LT(combined * 10, uncombined);
  }
}

TEST(OpsTest, UnnestFlattens) {
  Cluster cluster(ClusterConfig{.num_partitions = 2});
  Schema nested_schema(
      {{"k", nrc::Type::Int()},
       {"bag", nrc::Type::Bag(nrc::Type::Tuple({{"x", nrc::Type::Int()}}))}});
  std::vector<Row> rows;
  rows.push_back(Row({Field::Int(1),
                      Field::Bag({Row({Field::Int(10)}),
                                  Row({Field::Int(11)})})}));
  rows.push_back(Row({Field::Int(2), Field::Bag(std::vector<Row>{})}));
  auto ds =
      Source(&cluster, nested_schema, std::move(rows), "in").ValueOrDie();
  auto flat = Unnest(&cluster, ds, 1, "unnest").ValueOrDie();
  EXPECT_EQ(flat.NumRows(), 2u);  // empty bag disappears
  EXPECT_EQ(flat.schema.size(), 2u);
  EXPECT_EQ(flat.schema.col(1).name, "x");
}

TEST(OpsTest, OuterUnnestKeepsEmptyAndAddsIds) {
  Cluster cluster(ClusterConfig{.num_partitions = 2});
  Schema nested_schema(
      {{"k", nrc::Type::Int()},
       {"bag", nrc::Type::Bag(nrc::Type::Tuple({{"x", nrc::Type::Int()}}))}});
  std::vector<Row> rows;
  rows.push_back(Row({Field::Int(1),
                      Field::Bag({Row({Field::Int(10)}),
                                  Row({Field::Int(11)})})}));
  rows.push_back(Row({Field::Int(2), Field::Bag(std::vector<Row>{})}));
  auto ds =
      Source(&cluster, nested_schema, std::move(rows), "in").ValueOrDie();
  auto flat = OuterUnnest(&cluster, ds, 1, "uid", "ou").ValueOrDie();
  EXPECT_EQ(flat.NumRows(), 3u);
  EXPECT_EQ(flat.schema.col(0).name, "uid");
  // The two rows of k=1 share a uid; the k=2 row has NULL x.
  std::map<int64_t, std::vector<const Row*>> by_uid;
  int nulls = 0;
  const std::vector<Row> flat_rows = flat.Collect();
  for (const auto& r : flat_rows) {
    by_uid[r.fields[0].AsInt()].push_back(&r);
    if (r.fields[2].is_null()) ++nulls;
  }
  EXPECT_EQ(by_uid.size(), 2u);
  EXPECT_EQ(nulls, 1);
}

TEST(OpsTest, DistinctRemovesDuplicates) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  auto ds = Source(&cluster, KvSchema(),
                   KvRows({{1, 1}, {1, 1}, {1, 2}, {2, 2}, {2, 2}}), "in")
                .ValueOrDie();
  auto d = Distinct(&cluster, ds, "dedup").ValueOrDie();
  EXPECT_EQ(d.NumRows(), 3u);
}

TEST(OpsTest, CoGroupAttachesMatchBags) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  auto l = Source(&cluster, KvSchema(), KvRows({{1, 10}, {2, 20}}), "l")
               .ValueOrDie();
  auto r = Source(&cluster,
                  Schema({{"k2", nrc::Type::Int()}, {"w", nrc::Type::Int()}}),
                  KvRows({{1, 100}, {1, 101}}), "r")
               .ValueOrDie();
  auto cg =
      CoGroup(&cluster, l, r, {0}, {0}, {1}, "matches", "cogroup").ValueOrDie();
  EXPECT_EQ(cg.NumRows(), 2u);
  for (const auto& row : cg.Collect()) {
    if (row.fields[0].AsInt() == 1) {
      EXPECT_EQ(row.fields[2].AsBag()->size(), 2u);
    } else {
      EXPECT_TRUE(row.fields[2].AsBag()->empty());
    }
  }
}

TEST(OpsTest, MemoryCapTriggersResourceExhausted) {
  // Inputs are exempt (pre-cached), but the first real operator over them
  // must hit the cap.
  ClusterConfig cfg{.num_partitions = 2, .partition_memory_cap = 512};
  Cluster cluster(cfg);
  // Spilling (on by default) would turn this overflow into disk runs and
  // succeed; this test is about the historical hard failure.
  cluster.set_spill_enabled(false);
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(Row({Field::Int(i), Field::Str(std::string(64, 'x'))}));
  }
  Schema s({{"k", nrc::Type::Int()}, {"s", nrc::Type::String()}});
  auto ds = Source(&cluster, s, std::move(rows), "in");
  ASSERT_TRUE(ds.ok()) << "inputs are exempt from the cap";
  auto filtered =
      FilterRows(&cluster, *ds, [](const Row&) { return true; }, "copy");
  ASSERT_FALSE(filtered.ok());
  EXPECT_TRUE(filtered.status().IsResourceExhausted());
}

TEST(OpsTest, SkewedKeysOverloadOnePartitionInStats) {
  // One heavy key: max receive bytes should dominate total/num_partitions.
  Cluster cluster(ClusterConfig{.num_partitions = 8});
  std::vector<std::pair<int64_t, int64_t>> kv;
  for (int i = 0; i < 2000; ++i) kv.push_back({7, i});
  for (int i = 0; i < 100; ++i) kv.push_back({i + 100, i});
  auto ds = Source(&cluster, KvSchema(), KvRows(kv), "in").ValueOrDie();
  cluster.stats().Reset();
  Repartition(&cluster, ds, {0}, "skewed_shuffle").ValueOrDie();
  const auto& st = cluster.stats().stages().back();
  EXPECT_GT(st.max_partition_recv_bytes * 2,
            st.shuffle_bytes);  // one partition got most of the data
}

TEST(OpsTest, SimulatedTimeReflectsStragglers) {
  // Same total data, skewed vs uniform keys: the skewed shuffle must cost
  // more simulated time despite equal row counts.
  auto run = [](bool skewed) {
    ClusterConfig cfg{.num_partitions = 8};
    cfg.stage_overhead_seconds = 0;  // isolate the straggler term
    Cluster cluster(cfg);
    std::vector<std::pair<int64_t, int64_t>> kv;
    for (int i = 0; i < 4000; ++i) {
      kv.push_back({skewed ? 1 : i, i});
    }
    auto ds = Source(&cluster, KvSchema(), KvRows(kv), "in").ValueOrDie();
    cluster.stats().Reset();
    Repartition(&cluster, ds, {0}, "shuffle").ValueOrDie();
    return cluster.stats().sim_seconds();
  };
  EXPECT_GT(run(true), run(false) * 2);
}

}  // namespace
}  // namespace runtime
}  // namespace trance
