// Unit tests for the skew module (Section 5, Fig. 6): heavy-key detection
// thresholds, skew-triple splitting, skew-aware join correctness and
// shuffle behaviour, and skew-aware BagToDict.
#include <gtest/gtest.h>

#include <map>

#include "runtime/cluster.h"
#include "runtime/ops.h"
#include "skew/skew.h"
#include "util/random.h"

namespace trance {
namespace skew {
namespace {

using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::Dataset;
using runtime::Field;
using runtime::JoinType;
using runtime::Row;
using runtime::Schema;

Schema KvSchema() {
  return Schema({{"k", nrc::Type::Int()}, {"v", nrc::Type::Int()}});
}

Dataset Skewed(Cluster* cluster, int64_t heavy_count, int64_t light_keys) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < heavy_count; ++i) {
    rows.push_back(Row({Field::Int(7), Field::Int(i)}));
  }
  for (int64_t k = 0; k < light_keys; ++k) {
    rows.push_back(Row({Field::Int(100 + k), Field::Int(k)}));
  }
  return runtime::Source(cluster, KvSchema(), std::move(rows), "skewed")
      .ValueOrDie();
}

TEST(SkewTest, DetectsDominantKey) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  Dataset ds = Skewed(&cluster, 900, 50);
  HeavyKeySet hk = DetectHeavyKeys(&cluster, ds, {0});
  ASSERT_EQ(hk.size(), 1u);
  EXPECT_TRUE(hk.IsHeavy(Row({Field::Int(7), Field::Int(0)}), {0}));
  EXPECT_FALSE(hk.IsHeavy(Row({Field::Int(100), Field::Int(0)}), {0}));
}

TEST(SkewTest, UniformDataHasNoHeavyKeys) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 2000; ++i) {
    rows.push_back(Row({Field::Int(i), Field::Int(i)}));  // all keys distinct
  }
  auto ds =
      runtime::Source(&cluster, KvSchema(), std::move(rows), "u").ValueOrDie();
  HeavyKeySet hk = DetectHeavyKeys(&cluster, ds, {0});
  EXPECT_TRUE(hk.empty());
}

TEST(SkewTest, ThresholdBoundsHeavyKeyCount) {
  // With threshold t, at most 1/t heavy keys per partition can exist.
  ClusterConfig cfg{.num_partitions = 1};
  cfg.heavy_key_threshold = 0.10;
  cfg.skew_sample_rate = 1.0;  // sample everything
  Cluster cluster(cfg);
  std::vector<Row> rows;
  for (int64_t k = 0; k < 20; ++k) {
    for (int64_t i = 0; i < 50; ++i) {
      rows.push_back(Row({Field::Int(k), Field::Int(i)}));
    }
  }
  auto ds =
      runtime::Source(&cluster, KvSchema(), std::move(rows), "b").ValueOrDie();
  HeavyKeySet hk = DetectHeavyKeys(&cluster, ds, {0});
  EXPECT_LE(hk.size(), 10u);  // 1 / 0.10
}

TEST(SkewTest, EncodedAndLegacySamplingAgree) {
  // Heavy-key detection is codec-invariant: the same hash-selected sample
  // produces the same heavy set (count and membership) whether frequencies
  // are keyed by encoded keys or legacy KeyView copies, and the sampling
  // stage's telemetry — including the keyed hash-table counters — matches;
  // only key_encode_bytes distinguishes the modes.
  ClusterConfig cfg{.num_partitions = 4};
  auto detect = [&](bool codec) {
    Cluster cluster(cfg);
    cluster.set_key_codec_enabled(codec);
    Dataset ds = Skewed(&cluster, 900, 50);
    cluster.stats().Reset();
    HeavyKeySet hk = DetectHeavyKeys(&cluster, ds, {0});
    return std::make_pair(std::move(hk), cluster.stats().stages().back());
  };
  auto [enc, enc_stage] = detect(true);
  auto [leg, leg_stage] = detect(false);
  EXPECT_TRUE(enc.use_codec);
  EXPECT_FALSE(leg.use_codec);
  EXPECT_EQ(enc.size(), leg.size());
  for (int64_t k : {int64_t{7}, int64_t{100}, int64_t{101}, int64_t{149}}) {
    Row probe({Field::Int(k), Field::Int(0)});
    EXPECT_EQ(enc.IsHeavy(probe, {0}), leg.IsHeavy(probe, {0})) << "key " << k;
  }
  EXPECT_EQ(enc_stage.rows_in, leg_stage.rows_in);
  EXPECT_EQ(enc_stage.heavy_key_count, leg_stage.heavy_key_count);
  EXPECT_EQ(enc_stage.shuffle_bytes, leg_stage.shuffle_bytes);
  EXPECT_EQ(enc_stage.hash_build_rows, leg_stage.hash_build_rows);
  EXPECT_EQ(enc_stage.hash_probe_hits, leg_stage.hash_probe_hits);
  EXPECT_EQ(enc_stage.hash_max_chain, leg_stage.hash_max_chain);
  EXPECT_GT(enc_stage.key_encode_bytes, 0u);
  EXPECT_EQ(leg_stage.key_encode_bytes, 0u);
}

TEST(SkewTest, SplitPartitionsRowsExactly) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  Dataset ds = Skewed(&cluster, 500, 40);
  auto triple = SplitByHeavyKeys(&cluster, ds, {0}, std::nullopt, "t");
  ASSERT_TRUE(triple.ok());
  EXPECT_EQ(triple->light.NumRows() + triple->heavy.NumRows(), 540u);
  for (const auto& r : triple->heavy.Collect()) {
    EXPECT_EQ(r.fields[0].AsInt(), 7);
  }
  for (const auto& r : triple->light.Collect()) {
    EXPECT_NE(r.fields[0].AsInt(), 7);
  }
}

TEST(SkewTest, SkewAwareJoinMatchesPlainJoin) {
  ClusterConfig cfg{.num_partitions = 4};
  Cluster cluster(cfg);
  Dataset l = Skewed(&cluster, 300, 30);
  std::vector<Row> rrows;
  rrows.push_back(Row({Field::Int(7), Field::Int(1000)}));
  for (int64_t k = 0; k < 30; ++k) {
    rrows.push_back(Row({Field::Int(100 + k), Field::Int(k)}));
  }
  Schema rs({{"k2", nrc::Type::Int()}, {"w", nrc::Type::Int()}});
  auto r = runtime::Source(&cluster, rs, rrows, "r").ValueOrDie();

  auto plain = runtime::HashJoin(&cluster, l, r, {0}, {0}, JoinType::kInner,
                                 "plain")
                   .ValueOrDie();
  auto aware = SkewAwareJoin(&cluster, SkewTriple::AllLight(l),
                             SkewTriple::AllLight(r), {0}, {0},
                             JoinType::kInner, "aware")
                   .ValueOrDie();
  auto merged = MergeTriple(&cluster, aware, "m").ValueOrDie();
  EXPECT_EQ(plain.NumRows(), merged.NumRows());
  // Multiset equality of results.
  auto histogram = [](const Dataset& ds) {
    std::map<std::pair<int64_t, int64_t>, int> h;
    for (const auto& row : ds.Collect()) {
      ++h[{row.fields[0].AsInt(), row.fields[1].AsInt()}];
    }
    return h;
  };
  EXPECT_EQ(histogram(plain), histogram(merged));
}

TEST(SkewTest, SkewAwareOuterJoinKeepsMisses) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  Dataset l = Skewed(&cluster, 200, 20);  // key 7 heavy; no match on right
  Schema rs({{"k2", nrc::Type::Int()}, {"w", nrc::Type::Int()}});
  std::vector<Row> rrows{Row({Field::Int(100), Field::Int(5)})};
  auto r = runtime::Source(&cluster, rs, rrows, "r").ValueOrDie();
  auto aware = SkewAwareJoin(&cluster, SkewTriple::AllLight(l),
                             SkewTriple::AllLight(r), {0}, {0},
                             JoinType::kLeftOuter, "aware")
                   .ValueOrDie();
  EXPECT_EQ(aware.NumRows(), 220u);  // every left row survives
  size_t nulls = 0;
  auto merged = MergeTriple(&cluster, aware, "m").ValueOrDie();
  for (const auto& row : merged.Collect()) {
    if (row.fields[2].is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 219u);  // all but the single key-100 match
}

TEST(SkewTest, SkewAwareJoinShufflesLessOnSkew) {
  ClusterConfig cfg{.num_partitions = 8};
  auto run = [&](bool aware) {
    Cluster cluster(cfg);
    Dataset l = Skewed(&cluster, 5000, 100);
    Schema rs({{"k2", nrc::Type::Int()}, {"w", nrc::Type::Int()}});
    std::vector<Row> rrows{Row({Field::Int(7), Field::Int(0)})};
    for (int64_t k = 0; k < 100; ++k) {
      rrows.push_back(Row({Field::Int(100 + k), Field::Int(k)}));
    }
    auto r = runtime::Source(&cluster, rs, rrows, "r").ValueOrDie();
    cluster.stats().Reset();
    if (aware) {
      SkewAwareJoin(&cluster, SkewTriple::AllLight(l),
                    SkewTriple::AllLight(r), {0}, {0}, JoinType::kInner,
                    "j")
          .ValueOrDie();
    } else {
      runtime::HashJoin(&cluster, l, r, {0}, {0}, JoinType::kInner, "j")
          .ValueOrDie();
    }
    return cluster.stats().total_shuffle_bytes();
  };
  EXPECT_LT(run(true) * 5, run(false));
}

TEST(SkewTest, BagToDictLeavesHeavyLabelsInPlace) {
  Cluster cluster(ClusterConfig{.num_partitions = 4});
  // Rows keyed by labels, one heavy.
  std::vector<Row> rows;
  Field heavy = runtime::MakeLabel({{"id", Field::Int(1)}});
  for (int i = 0; i < 400; ++i) {
    rows.push_back(Row({heavy, Field::Int(i)}));
  }
  for (int i = 0; i < 40; ++i) {
    rows.push_back(Row({runtime::MakeLabel({{"id", Field::Int(100 + i)}}),
                        Field::Int(i)}));
  }
  Schema s({{"label", nrc::Type::Label()}, {"v", nrc::Type::Int()}});
  auto ds =
      runtime::Source(&cluster, s, std::move(rows), "d").ValueOrDie();
  cluster.stats().Reset();
  auto triple =
      SkewAwareBagToDict(&cluster, SkewTriple::AllLight(ds), 0, "b2d")
          .ValueOrDie();
  EXPECT_EQ(triple.heavy.NumRows(), 400u);
  EXPECT_EQ(triple.light.NumRows(), 40u);
  EXPECT_TRUE(triple.light.partitioning.IsHashOn({0}));
  // The heavy rows did not move: their shuffle contribution is zero beyond
  // the light repartition.
  uint64_t heavy_bytes = triple.heavy.DeepSizeBytes();
  EXPECT_LT(cluster.stats().total_shuffle_bytes(), heavy_bytes);
}

}  // namespace
}  // namespace skew
}  // namespace trance
