// Fault injection & recovery: with the seeded injector enabled and a retry
// budget >= max_faults_per_task, every Fig-7 narrow-suite query — both
// compilation routes, 1 and 4 threads — must produce results and base stats
// bit-identical to a fault-free run (recovery is stats-transparent), with a
// deterministic fault schedule (same seed => same faults, attempt for
// attempt). A task that exceeds the budget escalates to a clean job-level
// ResourceExhausted naming the failing stage.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "exec/bridge.h"
#include "exec/pipeline.h"
#include "nrc/interp.h"
#include "runtime/cluster.h"
#include "runtime/fault.h"
#include "runtime/ops.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace trance {
namespace {

using nrc::Value;
using runtime::Dataset;
using runtime::FaultConfig;
using runtime::FaultInjector;
using runtime::FaultKind;
using runtime::JobStats;
using runtime::Row;
using runtime::StageStats;

// --- FaultInjector unit tests --------------------------------------------

FaultConfig InjectorConfig(double rate) {
  FaultConfig f;
  f.enabled = true;
  f.fault_rate = rate;
  return f;
}

TEST(FaultInjectorTest, DisabledNeverFaults) {
  FaultConfig f;  // enabled == false
  f.fault_rate = 1.0;
  FaultInjector inj(f);
  EXPECT_FALSE(inj.enabled());
  for (int p = 0; p < 64; ++p) {
    EXPECT_EQ(inj.Decide(0, static_cast<size_t>(p), 0), FaultKind::kNone);
  }
}

TEST(FaultInjectorTest, ZeroRateNeverFaults) {
  FaultInjector inj(InjectorConfig(0.0));
  EXPECT_FALSE(inj.enabled());
}

TEST(FaultInjectorTest, DecisionsAreDeterministic) {
  FaultInjector a(InjectorConfig(0.5));
  FaultInjector b(InjectorConfig(0.5));
  for (uint64_t stage = 0; stage < 16; ++stage) {
    for (size_t p = 0; p < 16; ++p) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        EXPECT_EQ(a.Decide(stage, p, attempt), b.Decide(stage, p, attempt));
      }
    }
  }
}

TEST(FaultInjectorTest, SeedChangesSchedule) {
  FaultConfig f1 = InjectorConfig(0.5);
  FaultConfig f2 = InjectorConfig(0.5);
  f2.seed = f1.seed + 1;
  FaultInjector a(f1);
  FaultInjector b(f2);
  int differ = 0;
  for (uint64_t stage = 0; stage < 32; ++stage) {
    for (size_t p = 0; p < 32; ++p) {
      if (a.Decide(stage, p, 0) != b.Decide(stage, p, 0)) ++differ;
    }
  }
  EXPECT_GT(differ, 0);
}

TEST(FaultInjectorTest, RateOneAlwaysFaultsUntilCap) {
  FaultConfig f = InjectorConfig(1.0);
  f.max_faults_per_task = 2;
  FaultInjector inj(f);
  for (size_t p = 0; p < 16; ++p) {
    EXPECT_NE(inj.Decide(3, p, 0), FaultKind::kNone);
    EXPECT_NE(inj.Decide(3, p, 1), FaultKind::kNone);
    // The cap guarantees the attempt after max_faults_per_task faults
    // succeeds — the "sufficient retry budget" guarantee.
    EXPECT_EQ(inj.Decide(3, p, 2), FaultKind::kNone);
  }
}

TEST(FaultInjectorTest, KindFlagsRestrictSelection) {
  FaultConfig f = InjectorConfig(1.0);
  f.inject_worker_crash = false;
  f.inject_resource_exhausted = false;
  FaultInjector inj(f);
  for (size_t p = 0; p < 32; ++p) {
    EXPECT_EQ(inj.Decide(0, p, 0), FaultKind::kFetchLoss);
  }
}

TEST(FaultInjectorTest, BackoffIsBoundedAndMonotone) {
  FaultConfig f = InjectorConfig(0.5);
  f.backoff_base_seconds = 0.5;
  f.backoff_max_seconds = 8.0;
  FaultInjector inj(f);
  EXPECT_DOUBLE_EQ(inj.BackoffSeconds(0), 0.5);
  EXPECT_DOUBLE_EQ(inj.BackoffSeconds(1), 1.0);
  EXPECT_DOUBLE_EQ(inj.BackoffSeconds(2), 2.0);
  EXPECT_DOUBLE_EQ(inj.BackoffSeconds(4), 8.0);
  EXPECT_DOUBLE_EQ(inj.BackoffSeconds(40), 8.0);  // bounded, no overflow
}

// --- End-to-end recovery equivalence -------------------------------------

runtime::ClusterConfig Config(int num_threads) {
  runtime::ClusterConfig c;
  c.num_partitions = 8;
  c.num_threads = num_threads;
  return c;
}

/// Fault schedule used by the recovery suite: every other task attempt
/// faults on average, at most 2 faults per task, budget 4 — recovery is
/// guaranteed to succeed (budget >= max_faults_per_task).
runtime::ClusterConfig FaultedConfig(int num_threads) {
  runtime::ClusterConfig c = Config(num_threads);
  c.faults.enabled = true;
  c.faults.fault_rate = 0.5;
  c.faults.max_faults_per_task = 2;
  c.faults.max_task_retries = 4;
  return c;
}

void ExpectSameRows(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.NumPartitions(), b.NumPartitions());
  for (size_t p = 0; p < a.NumPartitions(); ++p) {
    ASSERT_EQ(a.PartitionRowCount(p), b.PartitionRowCount(p))
        << "partition " << p;
    for (size_t i = 0; i < a.PartitionRowCount(p); ++i) {
      const Row ra = a.RowAt(p, i);
      const Row rb = b.RowAt(p, i);
      ASSERT_EQ(ra.fields.size(), rb.fields.size())
          << "partition " << p << " row " << i;
      for (size_t f = 0; f < ra.fields.size(); ++f) {
        EXPECT_EQ(ra.fields[f], rb.fields[f])
            << "partition " << p << " row " << i << " field " << f;
      }
    }
  }
}

/// Stats-transparency check: every non-recovery field equal between a
/// fault-free run `a` and a recovered run `b` (or two recovered runs).
void ExpectSameBaseStats(const JobStats& a, const JobStats& b) {
  EXPECT_EQ(a.total_shuffle_bytes(), b.total_shuffle_bytes());
  EXPECT_EQ(a.max_stage_shuffle_bytes(), b.max_stage_shuffle_bytes());
  EXPECT_EQ(a.peak_partition_bytes(), b.peak_partition_bytes());
  EXPECT_EQ(a.fused_stages(), b.fused_stages());
  EXPECT_EQ(a.intermediate_bytes_avoided(), b.intermediate_bytes_avoided());
  EXPECT_EQ(a.sim_seconds(), b.sim_seconds());
  ASSERT_EQ(a.stages().size(), b.stages().size());
  for (size_t i = 0; i < a.stages().size(); ++i) {
    const StageStats& sa = a.stages()[i];
    const StageStats& sb = b.stages()[i];
    SCOPED_TRACE("stage " + std::to_string(i) + " (" + sa.op + ")");
    EXPECT_EQ(sa.op, sb.op);
    EXPECT_EQ(sa.scope, sb.scope);
    EXPECT_EQ(sa.rows_in, sb.rows_in);
    EXPECT_EQ(sa.rows_out, sb.rows_out);
    EXPECT_EQ(sa.shuffle_bytes, sb.shuffle_bytes);
    EXPECT_EQ(sa.total_work_bytes, sb.total_work_bytes);
    EXPECT_EQ(sa.max_partition_work_bytes, sb.max_partition_work_bytes);
    EXPECT_EQ(sa.max_partition_recv_bytes, sb.max_partition_recv_bytes);
    EXPECT_EQ(sa.mem_high_water_bytes, sb.mem_high_water_bytes);
    EXPECT_EQ(sa.partition_work_bytes, sb.partition_work_bytes);
    EXPECT_EQ(sa.partition_recv_bytes, sb.partition_recv_bytes);
    EXPECT_EQ(sa.partition_send_bytes, sb.partition_send_bytes);
    EXPECT_EQ(sa.intermediate_bytes_avoided, sb.intermediate_bytes_avoided);
    EXPECT_EQ(sa.sim_seconds, sb.sim_seconds);
  }
}

/// The fault schedule itself must be deterministic: two runs with the same
/// seed (at any thread count) record identical fault telemetry, event for
/// event.
void ExpectSameFaultTelemetry(const JobStats& a, const JobStats& b) {
  EXPECT_EQ(a.injected_faults(), b.injected_faults());
  EXPECT_EQ(a.retries(), b.retries());
  EXPECT_DOUBLE_EQ(a.recovery_sim_seconds(), b.recovery_sim_seconds());
  ASSERT_EQ(a.stages().size(), b.stages().size());
  for (size_t i = 0; i < a.stages().size(); ++i) {
    const StageStats& sa = a.stages()[i];
    const StageStats& sb = b.stages()[i];
    SCOPED_TRACE("stage " + std::to_string(i) + " (" + sa.op + ")");
    EXPECT_EQ(sa.injected_faults, sb.injected_faults);
    EXPECT_EQ(sa.retries, sb.retries);
    EXPECT_EQ(sa.partition_retries, sb.partition_retries);
    EXPECT_DOUBLE_EQ(sa.recovery_sim_seconds, sb.recovery_sim_seconds);
    ASSERT_EQ(sa.fault_events.size(), sb.fault_events.size());
    for (size_t e = 0; e < sa.fault_events.size(); ++e) {
      EXPECT_EQ(sa.fault_events[e].partition, sb.fault_events[e].partition);
      EXPECT_EQ(sa.fault_events[e].attempt, sb.fault_events[e].attempt);
      EXPECT_EQ(sa.fault_events[e].kind, sb.fault_events[e].kind);
    }
  }
}

std::map<std::string, Value> TpchValues(const tpch::TpchData& d) {
  auto conv = [](const tpch::Table& t) {
    auto v = exec::RowsToValue(t.rows, t.schema);
    TRANCE_CHECK(v.ok(), "table conversion");
    return std::move(v).value();
  };
  return {{"Region", conv(d.region)},     {"Nation", conv(d.nation)},
          {"Customer", conv(d.customer)}, {"Orders", conv(d.orders)},
          {"Lineitem", conv(d.lineitem)}, {"Part", conv(d.part)},
          {"Supplier", conv(d.supplier)}, {"Partsupp", conv(d.partsupp)}};
}

struct StandardRun {
  Dataset out;
  JobStats stats;
};

StandardRun RunStandardWith(const nrc::Program& q,
                            const std::map<std::string, Value>& values,
                            const runtime::ClusterConfig& config) {
  runtime::Cluster cluster(config);
  exec::PipelineOptions opts;
  exec::Executor executor(&cluster, opts.exec);
  for (const auto& in : q.inputs) {
    auto v = values.find(in.name);
    TRANCE_CHECK(v != values.end(), "missing input");
    auto schema = runtime::Schema::FromBagType(in.type).ValueOrDie();
    auto rows = exec::ValueToRows(v->second, schema).ValueOrDie();
    auto ds = runtime::Source(&cluster, schema, std::move(rows), in.name)
                  .ValueOrDie();
    executor.Register(in.name, std::move(ds));
  }
  StandardRun r;
  auto out = exec::RunStandard(q, &executor, opts);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (out.ok()) r.out = std::move(out).value();
  r.stats = cluster.stats();
  return r;
}

struct ShreddedRunResult {
  exec::ShreddedRun run;
  JobStats stats;
};

ShreddedRunResult RunShreddedWith(const nrc::Program& q,
                                  const std::map<std::string, Value>& values,
                                  const runtime::ClusterConfig& config) {
  runtime::Cluster cluster(config);
  exec::PipelineOptions opts;
  exec::Executor executor(&cluster, opts.exec);
  int64_t seed = 0;
  for (const auto& in : q.inputs) {
    auto v = values.find(in.name);
    TRANCE_CHECK(v != values.end(), "missing input");
    TRANCE_CHECK(
        exec::RegisterShreddedInput(&executor, in.name, in.type, v->second,
                                    seed)
            .ok(),
        "register shredded input");
    seed += 1000000;
  }
  ShreddedRunResult r;
  auto run = exec::RunShredded(q, &executor, opts,
                               shred::MaterializeMode::kDomainElimination);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  if (run.ok()) r.run = std::move(run).value();
  r.stats = cluster.stats();
  return r;
}

void ExpectSameShreddedRows(const exec::ShreddedRun& a,
                            const exec::ShreddedRun& b) {
  ExpectSameRows(a.top, b.top);
  ASSERT_EQ(a.dicts.size(), b.dicts.size());
  for (size_t i = 0; i < a.dicts.size(); ++i) {
    SCOPED_TRACE("dict " + a.dicts[i].first);
    EXPECT_EQ(a.dicts[i].first, b.dicts[i].first);
    ExpectSameRows(a.dicts[i].second, b.dicts[i].second);
  }
}

class FaultSuiteTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  enum Kind { kFlatToNested = 0, kNestedToNested = 1, kNestedToFlat = 2 };

  StatusOr<nrc::Program> Query(Kind kind, int depth) {
    switch (kind) {
      case kFlatToNested:
        return tpch::FlatToNested(depth, tpch::Width::kNarrow);
      case kNestedToNested:
        return tpch::NestedToNested(depth, tpch::Width::kNarrow);
      case kNestedToFlat:
        return tpch::NestedToFlat(depth, tpch::Width::kNarrow);
    }
    return Status::Internal("bad kind");
  }

  std::map<std::string, Value> Inputs(Kind kind, int depth) {
    tpch::TpchConfig cfg;
    cfg.scale = 0.0005;
    auto values = TpchValues(tpch::Generate(cfg));
    if (kind == kFlatToNested) return values;
    auto prep = tpch::FlatToNested(depth, tpch::Width::kNarrow).ValueOrDie();
    nrc::Interpreter interp;
    auto nested = interp.EvalProgram(prep, values);
    TRANCE_CHECK(nested.ok(), "nested input prep");
    return {{"COP", nested->at("Q")}, {"Part", values.at("Part")}};
  }
};

TEST_P(FaultSuiteTest, StandardRouteRecoveryIsTransparent) {
  auto [k, depth] = GetParam();
  Kind kind = static_cast<Kind>(k);
  auto q = Query(kind, depth);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto values = Inputs(kind, depth);

  StandardRun clean = RunStandardWith(*q, values, Config(1));
  StandardRun faulted1 = RunStandardWith(*q, values, FaultedConfig(1));
  StandardRun faulted4 = RunStandardWith(*q, values, FaultedConfig(4));
  StandardRun repeat1 = RunStandardWith(*q, values, FaultedConfig(1));

  // Faults were actually injected and recovered from.
  EXPECT_GT(faulted1.stats.injected_faults(), 0u);
  EXPECT_EQ(faulted1.stats.retries(), faulted1.stats.injected_faults());
  EXPECT_GT(faulted1.stats.recovery_sim_seconds(), 0.0);

  // Recovery is stats-transparent: identical rows and base stats vs. the
  // fault-free run.
  ExpectSameRows(clean.out, faulted1.out);
  ExpectSameBaseStats(clean.stats, faulted1.stats);
  EXPECT_EQ(clean.stats.injected_faults(), 0u);
  EXPECT_EQ(clean.stats.recovery_sim_seconds(), 0.0);

  // The fault schedule is deterministic: independent of thread count and
  // reproducible across runs with the same seed.
  ExpectSameRows(faulted1.out, faulted4.out);
  ExpectSameBaseStats(faulted1.stats, faulted4.stats);
  ExpectSameFaultTelemetry(faulted1.stats, faulted4.stats);
  ExpectSameRows(faulted1.out, repeat1.out);
  ExpectSameFaultTelemetry(faulted1.stats, repeat1.stats);
}

TEST_P(FaultSuiteTest, ShreddedRouteRecoveryIsTransparent) {
  auto [k, depth] = GetParam();
  Kind kind = static_cast<Kind>(k);
  auto q = Query(kind, depth);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto values = Inputs(kind, depth);

  ShreddedRunResult clean = RunShreddedWith(*q, values, Config(1));
  ShreddedRunResult faulted1 = RunShreddedWith(*q, values, FaultedConfig(1));
  ShreddedRunResult faulted4 = RunShreddedWith(*q, values, FaultedConfig(4));

  EXPECT_GT(faulted1.stats.injected_faults(), 0u);
  ExpectSameShreddedRows(clean.run, faulted1.run);
  ExpectSameBaseStats(clean.stats, faulted1.stats);
  ExpectSameShreddedRows(faulted1.run, faulted4.run);
  ExpectSameBaseStats(faulted1.stats, faulted4.stats);
  ExpectSameFaultTelemetry(faulted1.stats, faulted4.stats);
}

std::string FaultParamName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kKinds[] = {"flat_to_nested", "nested_to_nested",
                                 "nested_to_flat"};
  return std::string(kKinds[std::get<0>(info.param)]) + "_depth" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Fig7NarrowSuite, FaultSuiteTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 2, 3, 4)),
    FaultParamName);

// --- Escalation and attribution ------------------------------------------

runtime::Dataset SmallSource(runtime::Cluster* cluster) {
  runtime::Schema schema;
  schema.Append({"k", nrc::Type::Int()});
  schema.Append({"v", nrc::Type::Int()});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 64; ++i) {
    Row r;
    r.fields.push_back(runtime::Field::Int(i % 7));
    r.fields.push_back(runtime::Field::Int(i));
    rows.push_back(std::move(r));
  }
  return runtime::Source(cluster, schema, std::move(rows), "small")
      .ValueOrDie();
}

TEST(FaultRecoveryTest, RetryBudgetExhaustionEscalatesCleanly) {
  runtime::ClusterConfig c;
  c.num_partitions = 4;
  c.faults.enabled = true;
  c.faults.fault_rate = 1.0;       // every attempt faults...
  c.faults.max_faults_per_task = 10;  // ...well past the budget
  c.faults.max_task_retries = 2;
  runtime::Cluster cluster(c);
  runtime::Dataset in = SmallSource(&cluster);
  auto out = runtime::Repartition(&cluster, in, {0}, "repart(small)");
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsResourceExhausted()) << out.status().ToString();
  std::string msg = out.status().ToString();
  EXPECT_NE(msg.find("retry budget exhausted in stage"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("repart(small)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("partition"), std::string::npos) << msg;
}

TEST(FaultRecoveryTest, SufficientBudgetAlwaysRecovers) {
  // Even at fault rate 1.0: the injector stops failing a task after
  // max_faults_per_task faults, so budget >= max_faults_per_task recovers.
  runtime::ClusterConfig c;
  c.num_partitions = 4;
  c.faults.enabled = true;
  c.faults.fault_rate = 1.0;
  c.faults.max_faults_per_task = 3;
  c.faults.max_task_retries = 3;
  runtime::Cluster cluster(c);
  runtime::Dataset in = SmallSource(&cluster);
  auto out = runtime::Repartition(&cluster, in, {0}, "repart(small)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(cluster.stats().injected_faults(), 0u);

  runtime::ClusterConfig clean_cfg;
  clean_cfg.num_partitions = 4;
  runtime::Cluster clean(clean_cfg);
  runtime::Dataset in2 = SmallSource(&clean);
  auto expected = runtime::Repartition(&clean, in2, {0}, "repart(small)");
  ASSERT_TRUE(expected.ok());
  ExpectSameRows(*expected, *out);
}

TEST(FaultRecoveryTest, MemoryCapMessageNamesStageAndPartition) {
  runtime::ClusterConfig c;
  c.num_partitions = 4;
  c.partition_memory_cap = 1;  // everything saturates
  runtime::Cluster cluster(c);
  // Spilling (on by default) would mask the saturation; this test is about
  // the historical hard-failure message, so force the pre-spill behavior.
  cluster.set_spill_enabled(false);
  runtime::Dataset in = SmallSource(&cluster);
  auto out = runtime::Repartition(&cluster, in, {0}, "repart(small)");
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsResourceExhausted());
  std::string msg = out.status().ToString();
  EXPECT_NE(msg.find("worker memory saturated in stage"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("repart(small)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("partition"), std::string::npos) << msg;
  // The message must name the configured cap and the observed bytes.
  EXPECT_NE(msg.find("holds"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bytes) > cap"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(1 bytes)"), std::string::npos) << msg;
}

}  // namespace
}  // namespace trance
