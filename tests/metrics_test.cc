// MetricRegistry: typed handles, thread-sharded counter exactness, snapshot
// ordering, Prometheus/JSON exposition, reset semantics — and the contract
// that the registry's values agree with JobStats on real query runs and are
// bit-identical at any thread count.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "exec/pipeline.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "runtime/cluster.h"
#include "shred/shredded_type.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace trance {
namespace {

using obs::MetricKind;
using obs::MetricRegistry;
using obs::MetricSample;

// --- Registry semantics --------------------------------------------------

TEST(MetricRegistryTest, FindOrCreateReturnsStableHandles) {
  MetricRegistry reg;
  obs::Counter* a = reg.GetCounter("requests_total", "requests");
  obs::Counter* b = reg.GetCounter("requests_total", "requests");
  EXPECT_EQ(a, b);
  a->Add(3);
  b->Increment();
  EXPECT_EQ(a->Value(), 4u);

  // Distinct label sets are distinct series of the same family.
  obs::Counter* red = reg.GetCounter("colored_total", "colored", {{"c", "red"}});
  obs::Counter* blue =
      reg.GetCounter("colored_total", "colored", {{"c", "blue"}});
  EXPECT_NE(red, blue);
  red->Add(1);
  blue->Add(2);
  EXPECT_EQ(red->Value(), 1u);
  EXPECT_EQ(blue->Value(), 2u);
}

TEST(MetricRegistryTest, ConcurrentShardedAddsAreExact) {
  MetricRegistry reg;
  obs::Counter* c = reg.GetCounter("hot_total", "concurrently bumped");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c] {
      for (int i = 0; i < kAddsPerThread; ++i) c->Add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricRegistryTest, GaugeSetAddMax) {
  MetricRegistry reg;
  obs::Gauge* g = reg.GetGauge("level", "a gauge");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);
  g->Add(1.5);
  EXPECT_DOUBLE_EQ(g->Value(), 4.0);
  g->SetMax(3.0);  // below current: no-op
  EXPECT_DOUBLE_EQ(g->Value(), 4.0);
  g->SetMax(7.0);
  EXPECT_DOUBLE_EQ(g->Value(), 7.0);
}

TEST(MetricRegistryTest, HistogramBucketsSumCount) {
  MetricRegistry reg;
  obs::Histogram* h =
      reg.GetHistogram("latency", "a histogram", {1.0, 2.0, 5.0});
  h->Observe(0.5);   // bucket <=1
  h->Observe(1.0);   // bucket <=1 (bounds are inclusive)
  h->Observe(1.5);   // bucket <=2
  h->Observe(10.0);  // +Inf bucket
  std::vector<MetricSample> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const MetricSample& s = snap[0];
  EXPECT_EQ(s.kind, MetricKind::kHistogram);
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.bucket_counts.size(), 4u);
  EXPECT_EQ(s.bucket_counts[0], 2u);
  EXPECT_EQ(s.bucket_counts[1], 1u);
  EXPECT_EQ(s.bucket_counts[2], 0u);
  EXPECT_EQ(s.bucket_counts[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 13.0);
}

TEST(MetricRegistryTest, SnapshotSortedByNameAndLabels) {
  MetricRegistry reg;
  reg.GetCounter("zzz_total", "z")->Add(1);
  reg.GetCounter("aaa_total", "a")->Add(1);
  reg.GetCounter("mmm_total", "m", {{"k", "b"}})->Add(1);
  reg.GetCounter("mmm_total", "m", {{"k", "a"}})->Add(1);
  std::vector<MetricSample> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].ExpositionName(), "aaa_total");
  EXPECT_EQ(snap[1].ExpositionName(), "mmm_total{k=\"a\"}");
  EXPECT_EQ(snap[2].ExpositionName(), "mmm_total{k=\"b\"}");
  EXPECT_EQ(snap[3].ExpositionName(), "zzz_total");
}

TEST(MetricRegistryTest, ResetZeroesValuesKeepsRegistrations) {
  MetricRegistry reg;
  obs::Counter* c = reg.GetCounter("c_total", "c");
  obs::Gauge* g = reg.GetGauge("g", "g");
  obs::Histogram* h = reg.GetHistogram("h", "h", {1.0});
  c->Add(5);
  g->Set(9.0);
  h->Observe(0.5);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  std::vector<MetricSample> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);  // registrations survive
  for (const MetricSample& s : snap) {
    EXPECT_EQ(s.counter_value, 0u);
    EXPECT_EQ(s.count, 0u);
  }
  // The old handle is still live after Reset.
  c->Add(2);
  EXPECT_EQ(c->Value(), 2u);
}

// --- Exposition formats --------------------------------------------------

TEST(MetricRegistryTest, PrometheusTextExposition) {
  MetricRegistry reg;
  reg.GetCounter("trance_rows_total", "rows processed")->Add(12);
  reg.GetCounter("trance_stages_total", "stages", {{"movement", "shuffle"}})
      ->Add(3);
  reg.GetGauge("trance_peak", "peak bytes")->Set(1024);
  reg.GetHistogram("trance_imbalance", "straggler factor", {1.0, 2.0})
      ->Observe(1.5);
  std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("# HELP trance_rows_total rows processed\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE trance_rows_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("trance_rows_total 12\n"), std::string::npos);
  EXPECT_NE(text.find("trance_stages_total{movement=\"shuffle\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE trance_peak gauge\n"), std::string::npos);
  EXPECT_NE(text.find("trance_peak 1024\n"), std::string::npos);
  // Histogram exposition: cumulative buckets, +Inf, _sum and _count.
  EXPECT_NE(text.find("# TYPE trance_imbalance histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("trance_imbalance_bucket{le=\"1\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("trance_imbalance_bucket{le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("trance_imbalance_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("trance_imbalance_sum 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("trance_imbalance_count 1\n"), std::string::npos);
}

TEST(MetricRegistryTest, JsonExpositionParses) {
  MetricRegistry reg;
  reg.GetCounter("c_total", "c")->Add(7);
  reg.GetCounter("lab_total", "l", {{"k", "v"}})->Add(2);
  reg.GetGauge("g", "g")->Set(2.25);
  reg.GetHistogram("h", "h", {1.0, 4.0})->Observe(3.0);
  auto parsed = obs::ParseJson(reg.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& v = parsed.value();
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.Find("c_total"), nullptr);
  EXPECT_DOUBLE_EQ(v.Find("c_total")->num, 7.0);
  ASSERT_NE(v.Find("lab_total{k=\"v\"}"), nullptr);
  EXPECT_DOUBLE_EQ(v.Find("lab_total{k=\"v\"}")->num, 2.0);
  EXPECT_DOUBLE_EQ(v.Find("g")->num, 2.25);
  const obs::JsonValue* h = v.Find("h");
  ASSERT_NE(h, nullptr);
  ASSERT_TRUE(h->is_object());
  EXPECT_DOUBLE_EQ(h->Find("count")->num, 1.0);
  EXPECT_DOUBLE_EQ(h->Find("sum")->num, 3.0);
  const obs::JsonValue* buckets = h->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  EXPECT_DOUBLE_EQ(buckets->Find("le_1")->num, 0.0);
  EXPECT_DOUBLE_EQ(buckets->Find("le_4")->num, 1.0);   // cumulative
  EXPECT_DOUBLE_EQ(buckets->Find("le_inf")->num, 1.0);
}

// --- Registry vs. JobStats on real runs ----------------------------------

Status RegisterTables(exec::Executor* executor, const tpch::TpchData& d) {
  struct E {
    const tpch::Table* t;
    const char* n;
  };
  for (const E& e : {E{&d.region, "Region"}, E{&d.nation, "Nation"},
                     E{&d.customer, "Customer"}, E{&d.orders, "Orders"},
                     E{&d.lineitem, "Lineitem"}, E{&d.part, "Part"}}) {
    TRANCE_ASSIGN_OR_RETURN(
        runtime::Dataset ds,
        runtime::Source(executor->cluster(), e.t->schema, e.t->rows, e.n));
    executor->Register(e.n, ds);
    executor->Register(shred::FlatInputName(e.n), std::move(ds));
  }
  return Status::OK();
}

/// Runs the small Figure-7 standard query on a fresh cluster and returns the
/// cluster's registry snapshot plus its JobStats-derived expectations.
struct QueryRun {
  std::map<std::string, uint64_t> counters;
  std::string prometheus;
  uint64_t shuffle_bytes = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t hash_build_rows = 0;
  uint64_t hash_probe_hits = 0;
  uint64_t stages = 0;
};

QueryRun RunSmallQuery(int num_threads) {
  tpch::TpchConfig tcfg;
  tcfg.scale = 0.002;
  tpch::TpchData data = tpch::Generate(tcfg);
  runtime::ClusterConfig ccfg;
  ccfg.num_partitions = 4;
  ccfg.num_threads = num_threads;
  runtime::Cluster cluster(ccfg);
  exec::Executor executor(&cluster, {});
  EXPECT_TRUE(RegisterTables(&executor, data).ok());
  auto program = tpch::FlatToNested(2, tpch::Width::kNarrow);
  EXPECT_TRUE(program.ok());
  auto out = exec::RunStandard(program.value(), &executor, {});
  EXPECT_TRUE(out.ok()) << out.status().ToString();

  QueryRun r;
  for (const MetricSample& s : cluster.metrics().Snapshot()) {
    if (s.kind == MetricKind::kCounter) {
      r.counters[s.ExpositionName()] = s.counter_value;
    }
  }
  r.prometheus = cluster.metrics().ToPrometheusText();
  const runtime::JobStats& stats = cluster.stats();
  r.shuffle_bytes = stats.total_shuffle_bytes();
  for (const auto& st : stats.stages()) {
    r.rows_in += st.rows_in;
    r.rows_out += st.rows_out;
  }
  r.hash_build_rows = stats.hash_build_rows();
  r.hash_probe_hits = stats.hash_probe_hits();
  r.stages = stats.stages().size();
  return r;
}

TEST(MetricRegistryIntegrationTest, RegistryAgreesWithJobStats) {
  QueryRun r = RunSmallQuery(1);
  ASSERT_GT(r.stages, 0u);
  EXPECT_EQ(r.counters.at("trance_shuffle_bytes_total"), r.shuffle_bytes);
  EXPECT_EQ(r.counters.at("trance_rows_in_total"), r.rows_in);
  EXPECT_EQ(r.counters.at("trance_rows_out_total"), r.rows_out);
  EXPECT_EQ(r.counters.at("trance_hash_build_rows_total"), r.hash_build_rows);
  EXPECT_EQ(r.counters.at("trance_hash_probe_hits_total"), r.hash_probe_hits);
  // Every stage is counted in exactly one movement label.
  uint64_t stages_total = 0;
  for (const auto& [name, value] : r.counters) {
    if (name.rfind("trance_stages_total{", 0) == 0) stages_total += value;
  }
  EXPECT_EQ(stages_total, r.stages);
  EXPECT_EQ(r.counters.at("trance_jobs_total"), 1u);
  // And the same numbers surface in the Prometheus text with no extra
  // plumbing (spot check one).
  EXPECT_NE(r.prometheus.find("trance_shuffle_bytes_total " +
                              std::to_string(r.shuffle_bytes) + "\n"),
            std::string::npos)
      << r.prometheus;
}

TEST(MetricRegistryIntegrationTest, MetricsIdenticalAcrossThreadCounts) {
  QueryRun base = RunSmallQuery(1);
  for (int threads : {4, 8}) {
    QueryRun r = RunSmallQuery(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    // Registry content is deterministic: the whole exposition (counters,
    // gauges, histograms) is byte-identical to the sequential run.
    EXPECT_EQ(r.prometheus, base.prometheus);
    EXPECT_EQ(r.counters, base.counters);
  }
}

}  // namespace
}  // namespace trance
