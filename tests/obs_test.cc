// Observability layer: span nesting/ordering, percentile math, JSON
// round-trips of the trace export, EXPLAIN ANALYZE output on real runs, the
// job-wide straggler summary, and the splitmix64 partitioner.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/pipeline.h"
#include "obs/explain.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "shred/shredded_type.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace trance {
namespace {

// --- Tracer spans --------------------------------------------------------

TEST(TracerTest, DisabledSpansRecordNothing) {
  obs::Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    obs::Tracer::Span outer(&tracer, "outer");
    obs::Tracer::Span inner(&tracer, "inner");
  }
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, SpanNestingAndOrdering) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::Tracer::Span outer(&tracer, "outer");
    {
      obs::Tracer::Span first(&tracer, "first");
    }
    {
      obs::Tracer::Span second(&tracer, "second");
      second.AddArg("rows", "42");
    }
  }
  // Spans record on destruction: children before their parent. events()
  // returns a snapshot copy, so hold it in a local.
  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  const auto& first = events[0];
  const auto& second = events[1];
  const auto& outer = events[2];
  EXPECT_EQ(first.name, "first");
  EXPECT_EQ(second.name, "second");
  EXPECT_EQ(outer.name, "outer");

  // Nesting depth: outer at 0, both children at 1.
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(first.depth, 1);
  EXPECT_EQ(second.depth, 1);

  // Sibling ordering and parent containment on the timeline.
  EXPECT_LE(first.ts_us + first.dur_us, second.ts_us);
  EXPECT_LE(outer.ts_us, first.ts_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, second.ts_us + second.dur_us);

  ASSERT_EQ(second.args.size(), 1u);
  EXPECT_EQ(second.args[0].first, "rows");
  EXPECT_EQ(second.args[0].second, "42");
}

TEST(TracerTest, ClearResetsDepth) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  { obs::Tracer::Span s(&tracer, "a"); }
  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
  { obs::Tracer::Span s(&tracer, "b"); }
  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].depth, 0);
}

TEST(TracerTest, ConcurrentSpansAndExport) {
  // Regression test for the ToChromeTraceJson data race: exports must
  // snapshot under the lock while spans keep closing on other threads.
  obs::Tracer tracer;
  tracer.set_enabled(true);
  std::atomic<bool> stop{false};
  // Both sides are bounded: an unbounded spanner loop grows events_ while
  // every export reserializes the whole vector — quadratic wall time on a
  // small machine.
  std::thread spanner([&] {
    for (int i = 0; i < 5000 && !stop.load(); ++i) {
      obs::Tracer::Span s(&tracer, "work");
    }
  });
  for (int i = 0; i < 20; ++i) {
    std::string doc = tracer.ToChromeTraceJson();
    auto parsed = obs::ParseJson(doc);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    (void)tracer.events();
    tracer.Clear();  // keeps each export small while spans keep closing
  }
  stop.store(true);
  spanner.join();
  EXPECT_TRUE(obs::ParseJson(tracer.ToChromeTraceJson()).ok());
}

// --- Percentile / load-summary math --------------------------------------

TEST(HistogramTest, PercentileNearestRank) {
  EXPECT_EQ(obs::Percentile({}, 50), 0u);
  EXPECT_EQ(obs::Percentile({7}, 0), 7u);
  EXPECT_EQ(obs::Percentile({7}, 100), 7u);
  std::vector<uint64_t> v = {15, 20, 35, 40, 50};
  EXPECT_EQ(obs::Percentile(v, 5), 15u);
  EXPECT_EQ(obs::Percentile(v, 30), 20u);
  EXPECT_EQ(obs::Percentile(v, 40), 20u);
  EXPECT_EQ(obs::Percentile(v, 50), 35u);
  EXPECT_EQ(obs::Percentile(v, 100), 50u);
  // Unsorted input is handled.
  EXPECT_EQ(obs::Percentile({50, 15, 40, 20, 35}, 50), 35u);
}

TEST(HistogramTest, SummarizeLoads) {
  obs::LoadSummary empty = obs::SummarizeLoads({});
  EXPECT_EQ(empty.partitions, 0u);
  EXPECT_DOUBLE_EQ(empty.imbalance, 1.0);

  obs::LoadSummary s = obs::SummarizeLoads({100, 100, 100, 500});
  EXPECT_EQ(s.partitions, 4u);
  EXPECT_EQ(s.min, 100u);
  EXPECT_EQ(s.p50, 100u);
  EXPECT_EQ(s.p95, 500u);
  EXPECT_EQ(s.max, 500u);
  EXPECT_EQ(s.total, 800u);
  EXPECT_DOUBLE_EQ(s.mean, 200.0);
  EXPECT_DOUBLE_EQ(s.imbalance, 2.5);

  obs::LoadSummary zeros = obs::SummarizeLoads({0, 0});
  EXPECT_DOUBLE_EQ(zeros.imbalance, 1.0);
}

TEST(HistogramTest, PercentileEdgeCases) {
  // Empty input: every percentile is 0.
  EXPECT_EQ(obs::Percentile({}, 0), 0u);
  EXPECT_EQ(obs::Percentile({}, 100), 0u);
  // Single sample: every percentile is that sample.
  EXPECT_EQ(obs::Percentile({42}, 0), 42u);
  EXPECT_EQ(obs::Percentile({42}, 50), 42u);
  EXPECT_EQ(obs::Percentile({42}, 100), 42u);
  // p=0 / p=100 on a multi-sample vector hit min and max.
  std::vector<uint64_t> v = {9, 1, 5};
  EXPECT_EQ(obs::Percentile(v, 0), 1u);
  EXPECT_EQ(obs::Percentile(v, 100), 9u);
}

TEST(HistogramTest, SummarizeLoadsEdgeCases) {
  // All-equal loads: perfectly balanced, every percentile equals the load.
  obs::LoadSummary eq = obs::SummarizeLoads({250, 250, 250, 250});
  EXPECT_EQ(eq.partitions, 4u);
  EXPECT_EQ(eq.min, 250u);
  EXPECT_EQ(eq.p50, 250u);
  EXPECT_EQ(eq.p95, 250u);
  EXPECT_EQ(eq.max, 250u);
  EXPECT_EQ(eq.total, 1000u);
  EXPECT_DOUBLE_EQ(eq.mean, 250.0);
  EXPECT_DOUBLE_EQ(eq.imbalance, 1.0);

  // Single partition: imbalance is max/mean = 1 by construction.
  obs::LoadSummary one = obs::SummarizeLoads({77});
  EXPECT_EQ(one.partitions, 1u);
  EXPECT_DOUBLE_EQ(one.imbalance, 1.0);

  // Zero mean (all-idle partitions) must not divide by zero.
  obs::LoadSummary idle = obs::SummarizeLoads({0, 0, 0});
  EXPECT_EQ(idle.total, 0u);
  EXPECT_DOUBLE_EQ(idle.mean, 0.0);
  EXPECT_DOUBLE_EQ(idle.imbalance, 1.0);
}

TEST(StatsTest, ImbalanceFactorAndStragglerSummary) {
  runtime::StageStats balanced;
  balanced.op = "even";
  balanced.partition_work_bytes = {100, 100, 100, 100};
  balanced.total_work_bytes = 400;
  balanced.max_partition_work_bytes = 100;
  EXPECT_DOUBLE_EQ(balanced.ImbalanceFactor(), 1.0);

  runtime::StageStats skewed;
  skewed.op = "skewed_join";
  skewed.partition_work_bytes = {10, 10, 10, 370};
  skewed.total_work_bytes = 400;
  skewed.max_partition_work_bytes = 370;
  skewed.max_partition_recv_bytes = 999;
  skewed.heavy_key_count = 3;
  EXPECT_DOUBLE_EQ(skewed.ImbalanceFactor(), 3.7);

  // A stage with no histogram is neutral.
  runtime::StageStats untracked;
  untracked.op = "source";
  EXPECT_DOUBLE_EQ(untracked.ImbalanceFactor(), 1.0);

  runtime::JobStats job;
  job.AddStage(balanced);
  job.AddStage(skewed);
  job.AddStage(untracked);
  runtime::StragglerSummary sk = job.straggler();
  EXPECT_EQ(sk.max_partition_recv_bytes, 999u);
  EXPECT_EQ(sk.max_partition_work_bytes, 370u);
  EXPECT_DOUBLE_EQ(sk.worst_imbalance, 3.7);
  EXPECT_EQ(sk.worst_stage, "skewed_join");
  EXPECT_EQ(sk.heavy_key_count, 3u);

  std::string s = job.ToString();
  EXPECT_NE(s.find("straggler=3.70x@skewed_join"), std::string::npos);
  EXPECT_NE(s.find("heavy_keys=3"), std::string::npos);
}

// --- JSON writer / parser round-trips ------------------------------------

TEST(JsonTest, WriterParserRoundTrip) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("a \"quoted\" value\nwith newline");
  w.Key("count");
  w.Uint(18446744073709551615ull);
  w.Key("ratio");
  w.Number(2.5);
  w.Key("ok");
  w.Bool(true);
  w.Key("nothing");
  w.Null();
  w.Key("list");
  w.BeginArray();
  w.Int(-3);
  w.String("x");
  w.BeginObject();
  w.Key("nested");
  w.Bool(false);
  w.EndObject();
  w.EndArray();
  w.EndObject();

  auto parsed = obs::ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << w.str();
  const obs::JsonValue& v = parsed.value();
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.Find("name"), nullptr);
  EXPECT_EQ(v.Find("name")->str, "a \"quoted\" value\nwith newline");
  EXPECT_DOUBLE_EQ(v.Find("ratio")->num, 2.5);
  EXPECT_TRUE(v.Find("ok")->b);
  EXPECT_EQ(v.Find("nothing")->kind, obs::JsonValue::Kind::kNull);
  ASSERT_TRUE(v.Find("list")->is_array());
  ASSERT_EQ(v.Find("list")->arr.size(), 3u);
  EXPECT_DOUBLE_EQ(v.Find("list")->arr[0].num, -3.0);
  ASSERT_TRUE(v.Find("list")->arr[2].is_object());
  EXPECT_FALSE(v.Find("list")->arr[2].Find("nested")->b);
}

TEST(JsonTest, EscapeParseRoundTripProperty) {
  // Property: for any byte string s, parsing "\"" + JsonEscape(s) + "\""
  // yields s back — exercised over every control character, the JSON
  // specials, and multi-byte UTF-8 sequences (which JsonEscape must pass
  // through untouched).
  std::vector<std::string> cases;
  for (int c = 0; c < 0x20; ++c) cases.push_back(std::string(1, static_cast<char>(c)));
  cases.push_back("\"");
  cases.push_back("\\");
  cases.push_back("plain ascii");
  cases.push_back("tab\there\nnewline\rret");
  cases.push_back("\xc3\xa9");              // é (2-byte UTF-8)
  cases.push_back("\xe6\x97\xa5\xe6\x9c\xac");  // 日本 (3-byte UTF-8)
  cases.push_back("\xf0\x9f\x92\xbe");      // 💾 (4-byte UTF-8)
  cases.push_back(std::string("nul\x00mid", 8));  // embedded NUL survives
  // A mixed torture string combining everything above.
  std::string mixed;
  for (const auto& c : cases) mixed += c;
  cases.push_back(mixed);

  for (const auto& original : cases) {
    std::string doc = "\"" + obs::JsonEscape(original) + "\"";
    auto parsed = obs::ParseJson(doc);
    ASSERT_TRUE(parsed.ok())
        << parsed.status().ToString() << " for doc: " << doc;
    EXPECT_EQ(parsed.value().str, original) << "round-trip mismatch for: " << doc;
  }
}

TEST(JsonTest, ParserRejectsGarbage) {
  EXPECT_FALSE(obs::ParseJson("").ok());
  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("{}trailing").ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\":}").ok());
}

TEST(TracerTest, ChromeTraceJsonRoundTrip) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  {
    obs::Tracer::Span outer(&tracer, "pipeline");
    obs::Tracer::Span inner(&tracer, "type\"check\"");  // exercises escaping
    inner.AddArg("note", "a\\b");
  }
  std::string doc = tracer.ToChromeTraceJson();
  auto parsed = obs::ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << doc;
  const obs::JsonValue& v = parsed.value();
  ASSERT_TRUE(v.is_object());
  const obs::JsonValue* events = v.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->arr.size(), 2u);
  for (const auto& e : events->arr) {
    ASSERT_TRUE(e.is_object());
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      EXPECT_NE(e.Find(key), nullptr) << "missing " << key;
    }
    EXPECT_EQ(e.Find("ph")->str, "X");
  }
  EXPECT_EQ(events->arr[0].Find("name")->str, "type\"check\"");
  EXPECT_EQ(events->arr[0].Find("args")->Find("note")->str, "a\\b");
}

// --- EXPLAIN ANALYZE on real runs ----------------------------------------

Status RegisterTables(exec::Executor* executor, const tpch::TpchData& d) {
  struct E {
    const tpch::Table* t;
    const char* n;
  };
  for (const E& e : {E{&d.region, "Region"}, E{&d.nation, "Nation"},
                     E{&d.customer, "Customer"}, E{&d.orders, "Orders"},
                     E{&d.lineitem, "Lineitem"}, E{&d.part, "Part"}}) {
    TRANCE_ASSIGN_OR_RETURN(
        runtime::Dataset ds,
        runtime::Source(executor->cluster(), e.t->schema, e.t->rows, e.n));
    executor->Register(e.n, ds);
    executor->Register(shred::FlatInputName(e.n), std::move(ds));
  }
  return Status::OK();
}

tpch::TpchData SmallTpch() {
  tpch::TpchConfig cfg;
  cfg.scale = 0.002;
  return tpch::Generate(cfg);
}

TEST(ExplainAnalyzeTest, StandardRunShowsPerOperatorStats) {
  tpch::TpchData data = SmallTpch();
  runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 4});
  exec::Executor executor(&cluster, {});
  ASSERT_TRUE(RegisterTables(&executor, data).ok());
  auto program = tpch::FlatToNested(2, tpch::Width::kNarrow);
  ASSERT_TRUE(program.ok());
  plan::PlanProgram compiled;
  auto out = exec::RunStandard(program.value(), &executor, {}, &compiled);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_FALSE(compiled.assignments.empty());

  std::string ex = obs::ExplainAnalyze(compiled, cluster.stats());
  EXPECT_NE(ex.find("EXPLAIN ANALYZE"), std::string::npos);
  // Per-operator stats joined onto plan lines.
  EXPECT_NE(ex.find("rows="), std::string::npos);
  EXPECT_NE(ex.find("shuffle="), std::string::npos);
  EXPECT_NE(ex.find("straggler="), std::string::npos);
  EXPECT_NE(ex.find("mode="), std::string::npos);
  EXPECT_NE(ex.find("work(p50/p95/max)="), std::string::npos);
  // The job summary footer.
  EXPECT_NE(ex.find("job: stages="), std::string::npos) << ex;

  // Every executed plan-node scope must round-trip: no stage with a
  // non-empty scope may end up unattributed.
  std::set<std::string> walked;
  for (const auto& a : compiled.assignments) {
    // Count nodes per assignment the same way the executor numbers them.
    std::function<int(const plan::PlanPtr&)> count =
        [&](const plan::PlanPtr& p) {
          int n = 1;
          for (size_t i = 0; i < p->num_children(); ++i) {
            n += count(p->child(i));
          }
          return n;
        };
    int total = count(a.plan);
    for (int i = 0; i < total; ++i) {
      walked.insert(obs::StageScopeName(a.var, i));
    }
  }
  for (const auto& s : cluster.stats().stages()) {
    if (!s.scope.empty()) {
      EXPECT_TRUE(walked.count(s.scope) > 0)
          << "stage " << s.op << " scope " << s.scope
          << " not reachable from the explain walk";
    }
  }
}

TEST(ExplainAnalyzeTest, ShreddedRunShowsPerOperatorStats) {
  tpch::TpchData data = SmallTpch();
  runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 4});
  exec::Executor executor(&cluster, {});
  ASSERT_TRUE(RegisterTables(&executor, data).ok());
  auto program = tpch::FlatToNested(2, tpch::Width::kNarrow);
  ASSERT_TRUE(program.ok());
  plan::PlanProgram compiled;
  auto run = exec::RunShredded(program.value(), &executor, {},
                               shred::MaterializeMode::kDomainElimination,
                               &compiled);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_FALSE(compiled.assignments.empty());

  std::string ex = obs::ExplainAnalyze(compiled, cluster.stats());
  EXPECT_NE(ex.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(ex.find("rows="), std::string::npos);
  EXPECT_NE(ex.find("shuffle="), std::string::npos);
  EXPECT_NE(ex.find("straggler="), std::string::npos);
  // The shredded route ends dictionary assignments in BagToDict.
  EXPECT_NE(ex.find("BagToDict"), std::string::npos) << ex;
  EXPECT_NE(ex.find("job: stages="), std::string::npos);
}

TEST(ExplainAnalyzeTest, JobStatsJsonIsValid) {
  tpch::TpchData data = SmallTpch();
  runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 4});
  exec::Executor executor(&cluster, {});
  ASSERT_TRUE(RegisterTables(&executor, data).ok());
  auto program = tpch::FlatToNested(2, tpch::Width::kNarrow);
  ASSERT_TRUE(program.ok());
  auto out = exec::RunStandard(program.value(), &executor, {});
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  std::string doc = obs::JobStatsToJson(cluster.stats());
  auto parsed = obs::ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& v = parsed.value();
  const obs::JsonValue* stages = v.Find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_TRUE(stages->is_array());
  EXPECT_FALSE(stages->arr.empty());
  // Shuffling stages must expose partition-load percentile summaries.
  bool some_work_summary = false;
  for (const auto& st : stages->arr) {
    if (st.Find("work") != nullptr) {
      some_work_summary = true;
      EXPECT_NE(st.Find("work")->Find("p50"), nullptr);
      EXPECT_NE(st.Find("work")->Find("p95"), nullptr);
      EXPECT_NE(st.Find("work")->Find("max"), nullptr);
      EXPECT_NE(st.Find("work")->Find("imbalance"), nullptr);
    }
  }
  EXPECT_TRUE(some_work_summary);
  const obs::JsonValue* totals = v.Find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_NE(totals->Find("worst_imbalance"), nullptr);
  EXPECT_NE(totals->Find("max_partition_work_bytes"), nullptr);
}

// --- Partitioner ---------------------------------------------------------

TEST(PartitionOfTest, MixesSequentialKeys) {
  runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 8});
  // Raw `hash % n` maps sequential hashes to cycling partitions; the
  // splitmix64 finalizer must break that pattern.
  int identity_matches = 0;
  std::vector<int> counts(8, 0);
  const int kKeys = 4096;
  for (int i = 0; i < kKeys; ++i) {
    int p = cluster.PartitionOf(static_cast<uint64_t>(i));
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 8);
    counts[p]++;
    if (p == i % 8) identity_matches++;
  }
  // ~1/8 of keys land on their mod-partition by chance; all of them would
  // under the old identity mapping.
  EXPECT_LT(identity_matches, kKeys / 4);
  // Roughly uniform spread: every partition within 2x of the ideal share.
  for (int c : counts) {
    EXPECT_GT(c, kKeys / 16);
    EXPECT_LT(c, kKeys / 4);
  }
}

TEST(PartitionOfTest, RespectsSeed) {
  runtime::ClusterConfig a;
  a.num_partitions = 8;
  a.seed = 1;
  runtime::ClusterConfig b = a;
  b.seed = 2;
  runtime::Cluster ca(a), cb(b);
  int differing = 0;
  for (uint64_t k = 0; k < 256; ++k) {
    if (ca.PartitionOf(k) != cb.PartitionOf(k)) differing++;
  }
  EXPECT_GT(differing, 0);
  // Same seed is deterministic.
  runtime::Cluster ca2(a);
  for (uint64_t k = 0; k < 256; ++k) {
    EXPECT_EQ(ca.PartitionOf(k), ca2.PartitionOf(k));
  }
}

}  // namespace
}  // namespace trance
