// Tests for the exec layer: the scalar expression compiler (NULL
// propagation, label construction), the value<->row bridge round-trips, and
// executor-level behaviours (broadcast threshold, program registry).
#include <gtest/gtest.h>

#include "exec/bridge.h"
#include "exec/lowering.h"
#include "exec/scalar_compiler.h"
#include "nrc/builder.h"
#include "plan/plan.h"
#include "util/random.h"

namespace trance {
namespace {

using namespace nrc::dsl;
using exec::CompileScalar;
using exec::ScalarResultType;
using nrc::Expr;
using nrc::Type;
using nrc::Value;
using runtime::Field;
using runtime::Row;
using runtime::Schema;

Schema TestSchema() {
  return Schema({{"a", Type::Int()},
                 {"b", Type::Real()},
                 {"s", Type::String()},
                 {"flag", Type::Bool()}});
}

TEST(ScalarCompilerTest, ArithmeticAndTypes) {
  Schema schema = TestSchema();
  auto f = CompileScalar(Mul(Add(V("a"), I(1)), V("b")), schema);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  Row r({Field::Int(3), Field::Real(2.5), Field::Str("x"),
         Field::Bool(true)});
  EXPECT_DOUBLE_EQ((*f)(r).AsReal(), 10.0);
  auto t = ScalarResultType(Mul(Add(V("a"), I(1)), V("b")), schema);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->scalar_kind(), nrc::ScalarKind::kReal);
  // Int-only arithmetic stays integral; division always real.
  auto g = CompileScalar(Add(V("a"), I(2)), schema);
  EXPECT_TRUE((*g)(r).is_int());
  auto d = CompileScalar(Div(V("a"), I(2)), schema);
  EXPECT_TRUE((*d)(r).is_real());
}

TEST(ScalarCompilerTest, NullPropagation) {
  Schema schema = TestSchema();
  Row null_row({Field::Null(), Field::Null(), Field::Null(), Field::Null()});
  // Arithmetic with NULL is NULL; comparisons with NULL are false.
  auto f = CompileScalar(Add(V("a"), I(1)), schema);
  EXPECT_TRUE((*f)(null_row).is_null());
  auto c = CompileScalar(Eq(V("a"), I(0)), schema);
  EXPECT_FALSE((*c)(null_row).AsBool());
  auto lt = CompileScalar(Lt(V("b"), R(1.0)), schema);
  EXPECT_FALSE((*lt)(null_row).AsBool());
  // Division by zero yields NULL, not a crash.
  Row r({Field::Int(1), Field::Real(0.0), Field::Str(""), Field::Bool(false)});
  auto dz = CompileScalar(Div(V("a"), V("b")), schema);
  EXPECT_TRUE((*dz)(r).is_null());
}

TEST(ScalarCompilerTest, MissingColumnFails) {
  auto f = CompileScalar(V("nope"), TestSchema());
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kKeyError);
}

TEST(ScalarCompilerTest, NewLabelBuildsRuntimeLabels) {
  Schema schema = TestSchema();
  auto f = CompileScalar(Expr::NewLabel({{"k", V("a")}, {"t", V("s")}}),
                         schema);
  ASSERT_TRUE(f.ok());
  Row r1({Field::Int(7), Field::Real(0), Field::Str("x"), Field::Bool(true)});
  Row r2({Field::Int(7), Field::Real(9), Field::Str("x"), Field::Bool(false)});
  // Labels with equal captured values compare equal regardless of other
  // columns.
  EXPECT_EQ((*f)(r1), (*f)(r2));
  Row r3({Field::Int(8), Field::Real(0), Field::Str("x"), Field::Bool(true)});
  EXPECT_NE((*f)(r1), (*f)(r3));
}

TEST(BridgeTest, RowValueRoundTripFlat) {
  Schema schema = TestSchema();
  std::vector<Row> rows{
      Row({Field::Int(1), Field::Real(2.5), Field::Str("hi"),
           Field::Bool(true)}),
      Row({Field::Int(-3), Field::Real(0.0), Field::Str(""),
           Field::Bool(false)})};
  auto v = exec::RowsToValue(rows, schema);
  ASSERT_TRUE(v.ok());
  auto back = exec::ValueToRows(*v, schema);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(runtime::RowEquals(rows[i], (*back)[i]));
  }
}

TEST(BridgeTest, RowValueRoundTripNested) {
  Schema schema({{"k", Type::Int()},
                 {"bag", Type::Bag(Type::Tuple({{"x", Type::Int()},
                                                {"y", Type::String()}}))}});
  std::vector<Row> rows{
      Row({Field::Int(1),
           Field::Bag({Row({Field::Int(10), Field::Str("a")}),
                       Row({Field::Int(11), Field::Str("b")})})}),
      Row({Field::Int(2), Field::Bag(std::vector<Row>{})})};
  auto v = exec::RowsToValue(rows, schema);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  auto back = exec::ValueToRows(*v, schema);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(runtime::RowEquals(rows[i], (*back)[i]));
  }
}

TEST(BridgeTest, NullFieldsRejectedInConversion) {
  Schema schema({{"k", Type::Int()}});
  std::vector<Row> rows{Row({Field::Null()})};
  auto v = exec::RowsToValue(rows, schema);
  EXPECT_FALSE(v.ok());
}

TEST(ExecutorTest, BroadcastThresholdSelectsBroadcastJoin) {
  // With a generous threshold the executor lowers a join of a small right
  // side to a broadcast join (no left movement).
  runtime::ClusterConfig cfg{.num_partitions = 4};
  cfg.broadcast_threshold = 1ull << 20;
  runtime::Cluster cluster(cfg);
  exec::Executor ex(&cluster, {});
  Schema kv({{"k", Type::Int()}, {"v", Type::Int()}});
  std::vector<Row> lrows, rrows;
  for (int i = 0; i < 100; ++i) {
    lrows.push_back(Row({Field::Int(i % 10), Field::Int(i)}));
  }
  for (int i = 0; i < 10; ++i) {
    rrows.push_back(Row({Field::Int(i), Field::Int(i * 100)}));
  }
  ex.Register("L",
              runtime::Source(&cluster, kv, lrows, "L").ValueOrDie());
  ex.Register("R",
              runtime::Source(&cluster, kv, rrows, "R").ValueOrDie());
  auto plan = plan::PlanNode::Join(
      plan::PlanNode::Scan("L"), plan::PlanNode::Scan("R"), {"k"}, {"k"},
      false);
  cluster.stats().Reset();
  auto out = ex.ExecuteToDataset(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->NumRows(), 100u);
  bool saw_broadcast = false;
  for (const auto& s : cluster.stats().stages()) {
    if (s.op.find("broadcast") != std::string::npos) saw_broadcast = true;
  }
  EXPECT_TRUE(saw_broadcast);
}

TEST(ExecutorTest, MissingRelationIsKeyError) {
  runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 2});
  exec::Executor ex(&cluster, {});
  auto out = ex.ExecuteToDataset(plan::PlanNode::Scan("ghost"));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kKeyError);
}

}  // namespace
}  // namespace trance
