// Unit tests for the NRC type system, AST construction, and the shredded
// type derivation prerequisites (flatness predicates).
#include <gtest/gtest.h>

#include "nrc/builder.h"
#include "nrc/expr.h"
#include "nrc/printer.h"
#include "nrc/type.h"
#include "nrc/typecheck.h"

namespace trance {
namespace nrc {
namespace {

using dsl::BagTu;
using dsl::Tu;

TEST(TypeTest, ScalarSingletons) {
  EXPECT_TRUE(Type::Int()->is_scalar());
  EXPECT_TRUE(Type::Int()->is_numeric());
  EXPECT_TRUE(Type::Real()->is_numeric());
  EXPECT_FALSE(Type::String()->is_numeric());
  EXPECT_TRUE(Type::Bool()->is_bool());
  EXPECT_EQ(Type::Date()->scalar_kind(), ScalarKind::kDate);
}

TEST(TypeTest, TupleFieldLookup) {
  TypePtr t = Tu({{"a", Type::Int()}, {"b", Type::String()}});
  EXPECT_EQ(t->FieldIndex("a"), 0);
  EXPECT_EQ(t->FieldIndex("b"), 1);
  EXPECT_EQ(t->FieldIndex("c"), -1);
  auto ft = t->FieldType("b");
  ASSERT_TRUE(ft.ok());
  EXPECT_TRUE(TypeEquals(*ft, Type::String()));
  EXPECT_FALSE(t->FieldType("zzz").ok());
}

TEST(TypeTest, Equality) {
  TypePtr a = BagTu({{"x", Type::Int()}, {"y", Type::Real()}});
  TypePtr b = BagTu({{"x", Type::Int()}, {"y", Type::Real()}});
  TypePtr c = BagTu({{"x", Type::Int()}, {"y", Type::Int()}});
  TypePtr d = BagTu({{"y", Type::Real()}, {"x", Type::Int()}});
  EXPECT_TRUE(TypeEquals(a, b));
  EXPECT_FALSE(TypeEquals(a, c));
  EXPECT_FALSE(TypeEquals(a, d));  // field order matters
}

TEST(TypeTest, FlatBagPredicate) {
  TypePtr flat = BagTu({{"x", Type::Int()}, {"y", Type::String()}});
  EXPECT_TRUE(flat->IsFlatBag());
  TypePtr with_label =
      BagTu({{"x", Type::Int()}, {"l", Type::Label()}});
  EXPECT_TRUE(with_label->IsFlatBag());  // labels count as flat
  TypePtr nested = BagTu({{"x", Type::Int()}, {"inner", flat}});
  EXPECT_FALSE(nested->IsFlatBag());
  EXPECT_TRUE(Type::Bag(Type::Int())->IsFlatBag());
  EXPECT_FALSE(Type::Int()->IsFlatBag());
}

TEST(TypeTest, ToStringRoundsTrip) {
  TypePtr cop = BagTu(
      {{"cname", Type::String()},
       {"corders",
        BagTu({{"odate", Type::Date()},
               {"oparts",
                BagTu({{"pid", Type::Int()}, {"qty", Type::Real()}})}})}});
  EXPECT_EQ(cop->ToString(),
            "Bag(<cname: string, corders: Bag(<odate: date, oparts: "
            "Bag(<pid: int, qty: real>)>)>)");
}

TEST(TypeTest, DictType) {
  TypePtr d = Type::Dict(BagTu({{"pid", Type::Int()}}));
  EXPECT_TRUE(d->is_dict());
  EXPECT_TRUE(d->element()->is_bag());
  EXPECT_EQ(d->ToString(), "Label -> Bag(<pid: int>)");
}

TEST(ExprTest, FreeVars) {
  using namespace dsl;
  // for x in R union { <a := x.a, b := y.b> }
  ExprPtr e = For("x", V("R"), SngTup({{"a", V("x.a")}, {"b", V("y.b")}}));
  auto fv = e->FreeVars();
  EXPECT_TRUE(fv.count("R"));
  EXPECT_TRUE(fv.count("y"));
  EXPECT_FALSE(fv.count("x"));
}

TEST(ExprTest, FreeVarsLetAndLambda) {
  using namespace dsl;
  ExprPtr e = Let("z", V("input"), Expr::Lambda("l", Sng(V("z"))));
  auto fv = e->FreeVars();
  EXPECT_EQ(fv.size(), 1u);
  EXPECT_TRUE(fv.count("input"));
}

TEST(ExprTest, SubstituteRespectsBinding) {
  using namespace dsl;
  // for x in R union {x.a} with substitution x -> y must not touch bound x.
  ExprPtr body = Sng(V("x.a"));
  ExprPtr e = For("x", V("x"), body);  // free x only in the domain
  ExprPtr sub = Substitute(e, "x", V("R"));
  auto fv = sub->FreeVars();
  EXPECT_TRUE(fv.count("R"));
  EXPECT_FALSE(fv.count("x"));
}

TEST(TypecheckTest, RunningExampleTypes) {
  using namespace dsl;
  // COP and Part from Example 1.
  TypePtr cop_t = BagTu(
      {{"cname", Type::String()},
       {"corders",
        BagTu({{"odate", Type::Date()},
               {"oparts",
                BagTu({{"pid", Type::Int()}, {"qty", Type::Real()}})}})}});
  TypePtr part_t = BagTu({{"pid", Type::Int()},
                          {"pname", Type::String()},
                          {"price", Type::Real()}});

  ExprPtr q = For(
      "cop", V("COP"),
      SngTup(
          {{"cname", V("cop.cname")},
           {"corders",
            For("co", V("cop.corders"),
                SngTup({{"odate", V("co.odate")},
                        {"oparts",
                         SumBy({"pname"}, {"total"},
                               For("op", V("co.oparts"),
                                   For("p", V("Part"),
                                       If(Eq(V("op.pid"), V("p.pid")),
                                          SngTup({{"pname", V("p.pname")},
                                                  {"total",
                                                   Mul(V("op.qty"),
                                                       V("p.price"))}})))))}}))}}));

  Typechecker tc;
  TypeEnv env{{"COP", cop_t}, {"Part", part_t}};
  auto t = tc.Check(q, env);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  TypePtr expected = BagTu(
      {{"cname", Type::String()},
       {"corders",
        BagTu({{"odate", Type::Date()},
               {"oparts",
                BagTu({{"pname", Type::String()}, {"total", Type::Real()}})}})}});
  EXPECT_TRUE(TypeEquals(*t, expected)) << (*t)->ToString();
}

TEST(TypecheckTest, RejectsUnboundVariable) {
  Typechecker tc;
  auto r = tc.Check(dsl::V("nope"), {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(TypecheckTest, RejectsNonFlatDedup) {
  using namespace dsl;
  TypePtr nested =
      BagTu({{"a", Type::Int()}, {"inner", BagTu({{"b", Type::Int()}})}});
  Typechecker tc;
  auto r = tc.Check(Expr::Dedup(V("R")), {{"R", nested}});
  EXPECT_FALSE(r.ok());
}

TEST(TypecheckTest, RejectsMixedUnion) {
  using namespace dsl;
  Typechecker tc;
  TypeEnv env{{"A", BagTu({{"x", Type::Int()}})},
              {"B", BagTu({{"x", Type::Real()}})}};
  auto r = tc.Check(Expr::Union(V("A"), V("B")), env);
  EXPECT_FALSE(r.ok());
}

TEST(TypecheckTest, SumByRequiresNumericValues) {
  using namespace dsl;
  Typechecker tc;
  TypeEnv env{{"R", BagTu({{"k", Type::Int()}, {"v", Type::String()}})}};
  auto r = tc.Check(SumBy({"k"}, {"v"}, V("R")), env);
  EXPECT_FALSE(r.ok());
}

TEST(TypecheckTest, GroupByShape) {
  using namespace dsl;
  Typechecker tc;
  TypeEnv env{
      {"R", BagTu({{"k", Type::Int()}, {"a", Type::String()},
                   {"b", Type::Real()}})}};
  auto r = tc.Check(GroupBy({"k"}, V("R")), env);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  TypePtr expected =
      BagTu({{"k", Type::Int()},
             {"group", BagTu({{"a", Type::String()}, {"b", Type::Real()}})}});
  EXPECT_TRUE(TypeEquals(*r, expected)) << (*r)->ToString();
}

TEST(TypecheckTest, LambdaAndLookup) {
  using namespace dsl;
  Typechecker tc;
  TypeEnv env{{"D", Type::Dict(BagTu({{"x", Type::Int()}}))},
              {"l", Type::Label()}};
  auto r = tc.Check(Expr::Lookup(V("D"), V("l")), env);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(TypeEquals(*r, BagTu({{"x", Type::Int()}})));

  // lambda l2. Lookup(D, l2) : Label -> Bag(<x:int>)
  auto lam = tc.Check(Expr::Lambda("l2", Expr::Lookup(V("D"), V("l2"))), env);
  ASSERT_TRUE(lam.ok());
  EXPECT_TRUE((*lam)->is_dict());
}

TEST(PrinterTest, PrintsRunningExampleConstructs) {
  using namespace dsl;
  ExprPtr e = SumBy({"pname"}, {"total"},
                    For("p", V("Part"), SngTup({{"pname", V("p.pname")},
                                                {"total", V("p.price")}})));
  std::string s = PrintExpr(e);
  EXPECT_NE(s.find("sumBy^{total}_{pname}"), std::string::npos);
  EXPECT_NE(s.find("for p in Part union"), std::string::npos);
}

}  // namespace
}  // namespace nrc
}  // namespace trance
