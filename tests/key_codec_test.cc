// Encoded-key codec tests (ctest label `keys`).
//
// Part 1 — codec properties: on randomized field values (NULLs, int/real
// numeric edges, empty strings, nested and collapsed labels) the binary
// encoding's byte equality coincides with the legacy container identity
// (Field::operator== AND Field::Hash per column), the encoder's hash equals
// RowHashOn (so the PR-3 commutative, order-insensitive guarantee survives —
// permuted key columns hash and place identically), and bag-typed fields are
// rejected with a Status.
//
// Part 2 — end-to-end equivalence: every Fig-7 narrow-suite query, through
// both compilation routes, produces identical per-partition rows (hence
// identical placement), identical shuffle bytes, and identical pre-existing
// JobStats with the codec on and off, at 1 and 4 threads; the keyed
// hash-table counters are codec-invariant and key_encode_bytes is zero with
// the codec off. The counters are visible in EXPLAIN ANALYZE and the JSON
// export.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "exec/bridge.h"
#include "exec/pipeline.h"
#include "nrc/interp.h"
#include "obs/explain.h"
#include "obs/export.h"
#include "runtime/cluster.h"
#include "runtime/key_codec.h"
#include "runtime/ops.h"
#include "tpch/generator.h"
#include "tpch/queries.h"
#include "util/random.h"

namespace trance {
namespace {

using nrc::Value;
using runtime::Dataset;
using runtime::Field;
using runtime::JobStats;
using runtime::Row;
using runtime::StageStats;
namespace key_codec = runtime::key_codec;

// --- Part 1: codec properties -------------------------------------------

/// A randomized flat-key field drawn from every encodable kind, biased
/// toward the edge cases the codec must keep distinct (or merge): repeated
/// small integers, int-valued reals, signed zeros, empty strings, NULLs,
/// and (at depth > 0) labels capturing nested parameters.
Field RandomField(Rng* rng, int label_depth) {
  switch (rng->UniformRange(0, label_depth > 0 ? 6 : 5)) {
    case 0:
      return Field::Null();
    case 1:
      return Field::Int(rng->UniformRange(-3, 3));
    case 2: {
      // Int-valued and signed-zero reals collide with ints under
      // Field::operator== but hash apart; the codec must track the hash.
      static const double kReals[] = {0.0, -0.0, 1.0, -2.0, 0.5, 1e300};
      return Field::Real(kReals[rng->UniformRange(0, 5)]);
    }
    case 3:
      return Field::Str(rng->UniformRange(0, 2) == 0
                            ? ""
                            : "s" + std::to_string(rng->UniformRange(0, 3)));
    case 4:
      return Field::Bool(rng->UniformRange(0, 1) == 1);
    case 5:
      return Field::Int(rng->UniformRange(0, 1) == 0
                            ? std::numeric_limits<int64_t>::min()
                            : std::numeric_limits<int64_t>::max());
    default: {
      std::vector<std::pair<std::string, Field>> params;
      int n = static_cast<int>(rng->UniformRange(0, 2));
      for (int i = 0; i < n; ++i) {
        params.emplace_back("p" + std::to_string(i),
                            RandomField(rng, label_depth - 1));
      }
      return runtime::MakeLabel(std::move(params));
    }
  }
}

/// The legacy container identity: two fields land in the same hash-map slot
/// iff they compare equal AND hash equal (Int(1) vs Real(1.0) compare equal
/// but hash apart, so the containers keep them distinct).
bool LegacySameKey(const Row& a, const Row& b) {
  if (a.fields.size() != b.fields.size()) return false;
  for (size_t i = 0; i < a.fields.size(); ++i) {
    if (!(a.fields[i] == b.fields[i])) return false;
    if (a.fields[i].Hash() != b.fields[i].Hash()) return false;
  }
  return true;
}

TEST(KeyCodecTest, ByteEqualityMatchesLegacyContainerIdentity) {
  Rng rng(42);
  key_codec::KeyEncoder enc;
  std::vector<int> cols{0, 1};
  for (int trial = 0; trial < 20000; ++trial) {
    Row a({RandomField(&rng, 2), RandomField(&rng, 2)});
    Row b({RandomField(&rng, 2), RandomField(&rng, 2)});
    auto ka = enc.Encode(a, cols);
    ASSERT_TRUE(ka.ok()) << ka.status().ToString();
    key_codec::EncodedKey ea = key_codec::Materialize(ka.value());
    auto kb = enc.Encode(b, cols);
    ASSERT_TRUE(kb.ok()) << kb.status().ToString();
    bool bytes_equal = ea.bytes == kb.value().bytes;
    EXPECT_EQ(bytes_equal, LegacySameKey(a, b))
        << "trial " << trial << ": " << runtime::RowToString(a) << " vs "
        << runtime::RowToString(b);
    if (bytes_equal) {
      EXPECT_EQ(ea.hash, kb.value().hash);
    }
  }
}

TEST(KeyCodecTest, EncoderHashEqualsRowHashOn) {
  Rng rng(7);
  key_codec::KeyEncoder enc;
  std::vector<int> cols{0, 1, 2};
  for (int trial = 0; trial < 5000; ++trial) {
    Row r({RandomField(&rng, 2), RandomField(&rng, 2), RandomField(&rng, 2)});
    auto k = enc.Encode(r, cols);
    ASSERT_TRUE(k.ok());
    EXPECT_EQ(k.value().hash, runtime::RowHashOn(r, cols));
    EXPECT_EQ(key_codec::KeyHashOn(r, cols), runtime::RowHashOn(r, cols));
  }
}

TEST(KeyCodecTest, PermutedKeyColumnsHashAndPlaceIdentically) {
  runtime::ClusterConfig cfg;
  cfg.num_partitions = 8;
  runtime::Cluster cluster(cfg);
  Rng rng(11);
  key_codec::KeyEncoder enc;
  for (int trial = 0; trial < 2000; ++trial) {
    Row r({RandomField(&rng, 1), RandomField(&rng, 1), RandomField(&rng, 1)});
    auto a = enc.Encode(r, {0, 1, 2});
    ASSERT_TRUE(a.ok());
    key_codec::EncodedKey ea = key_codec::Materialize(a.value());
    auto b = enc.Encode(r, {2, 0, 1});
    ASSERT_TRUE(b.ok());
    // The per-column sum is commutative (the PR-3 RowHashOn guarantee), so
    // hash — and therefore partition placement — ignores column order.
    EXPECT_EQ(ea.hash, b.value().hash);
    EXPECT_EQ(cluster.PartitionOf(ea), cluster.PartitionOf(b.value()));
  }
}

TEST(KeyCodecTest, BagFieldsAreRejected) {
  key_codec::KeyEncoder enc;
  Row r({Field::Int(1), Field::Bag({Row({Field::Int(2)})})});
  auto k = enc.Encode(r, {0, 1});
  ASSERT_FALSE(k.ok());
  EXPECT_EQ(k.status().code(), StatusCode::kTypeError)
      << k.status().ToString();
  // Columns that skip the bag encode fine.
  EXPECT_TRUE(enc.Encode(r, {0}).ok());
}

TEST(KeyCodecTest, CollapsedLabelsEncodeIdentically) {
  // MakeLabel collapses a single label-valued parameter to that label, so
  // the wrapped and unwrapped forms are the same runtime value and must be
  // the same key.
  Field inner = runtime::MakeLabel({{"id", Field::Int(3)}});
  Field wrapped = runtime::MakeLabel({{"x", inner}});
  key_codec::KeyEncoder enc;
  auto a = enc.Encode(Row({inner}), {0});
  ASSERT_TRUE(a.ok());
  key_codec::EncodedKey ea = key_codec::Materialize(a.value());
  auto b = enc.Encode(Row({wrapped}), {0});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ea.bytes, b.value().bytes);
  EXPECT_EQ(ea.hash, b.value().hash);
}

TEST(KeyCodecTest, SignedZeroMergesNullLabelStaysDistinct) {
  key_codec::KeyEncoder enc;
  auto pos = enc.Encode(Row({Field::Real(0.0)}), {0});
  ASSERT_TRUE(pos.ok());
  key_codec::EncodedKey epos = key_codec::Materialize(pos.value());
  auto neg = enc.Encode(Row({Field::Real(-0.0)}), {0});
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(epos.bytes, neg.value().bytes);  // 0.0 == -0.0 and hashes agree

  // A null label pointer and a label with zero captured params are distinct
  // runtime values (distinct hashes) and must not merge.
  auto null_label = enc.Encode(Row({Field::Label(nullptr)}), {0});
  ASSERT_TRUE(null_label.ok());
  key_codec::EncodedKey enull = key_codec::Materialize(null_label.value());
  auto empty_label = enc.Encode(Row({runtime::MakeLabel({})}), {0});
  ASSERT_TRUE(empty_label.ok());
  EXPECT_NE(enull.bytes, empty_label.value().bytes);
}

// --- Part 2: end-to-end equivalence over the Fig-7 suite -----------------

runtime::ClusterConfig Config(int num_threads) {
  runtime::ClusterConfig c;
  c.num_partitions = 8;
  c.num_threads = num_threads;
  return c;
}

void ExpectSameRows(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.NumPartitions(), b.NumPartitions());
  for (size_t p = 0; p < a.NumPartitions(); ++p) {
    ASSERT_EQ(a.PartitionRowCount(p), b.PartitionRowCount(p))
        << "partition " << p;
    for (size_t i = 0; i < a.PartitionRowCount(p); ++i) {
      const Row ra = a.RowAt(p, i);
      const Row rb = b.RowAt(p, i);
      ASSERT_EQ(ra.fields.size(), rb.fields.size())
          << "partition " << p << " row " << i;
      for (size_t f = 0; f < ra.fields.size(); ++f) {
        EXPECT_EQ(ra.fields[f], rb.fields[f])
            << "partition " << p << " row " << i << " field " << f;
      }
    }
  }
}

/// Full JobStats equality except wall-clock fields. The keyed hash-table
/// counters are included — they are codec-invariant by design; only
/// key_encode_bytes may differ between modes (checked by the caller).
void ExpectSameStats(const JobStats& a, const JobStats& b) {
  EXPECT_EQ(a.total_shuffle_bytes(), b.total_shuffle_bytes());
  EXPECT_EQ(a.max_stage_shuffle_bytes(), b.max_stage_shuffle_bytes());
  EXPECT_EQ(a.peak_partition_bytes(), b.peak_partition_bytes());
  EXPECT_EQ(a.fused_stages(), b.fused_stages());
  EXPECT_EQ(a.intermediate_bytes_avoided(), b.intermediate_bytes_avoided());
  EXPECT_EQ(a.sim_seconds(), b.sim_seconds());
  EXPECT_EQ(a.hash_build_rows(), b.hash_build_rows());
  EXPECT_EQ(a.hash_probe_hits(), b.hash_probe_hits());
  EXPECT_EQ(a.hash_max_chain(), b.hash_max_chain());
  ASSERT_EQ(a.stages().size(), b.stages().size());
  for (size_t i = 0; i < a.stages().size(); ++i) {
    const StageStats& sa = a.stages()[i];
    const StageStats& sb = b.stages()[i];
    SCOPED_TRACE("stage " + std::to_string(i) + " (" + sa.op + ")");
    EXPECT_EQ(sa.op, sb.op);
    EXPECT_EQ(sa.scope, sb.scope);
    EXPECT_EQ(sa.rows_in, sb.rows_in);
    EXPECT_EQ(sa.rows_out, sb.rows_out);
    EXPECT_EQ(sa.shuffle_bytes, sb.shuffle_bytes);
    EXPECT_EQ(sa.total_work_bytes, sb.total_work_bytes);
    EXPECT_EQ(sa.mem_high_water_bytes, sb.mem_high_water_bytes);
    EXPECT_EQ(sa.partition_work_bytes, sb.partition_work_bytes);
    EXPECT_EQ(sa.hash_build_rows, sb.hash_build_rows);
    EXPECT_EQ(sa.hash_probe_hits, sb.hash_probe_hits);
    EXPECT_EQ(sa.hash_max_chain, sb.hash_max_chain);
    EXPECT_EQ(sa.sim_seconds, sb.sim_seconds);
  }
}

std::map<std::string, Value> TpchValues(const tpch::TpchData& d) {
  auto conv = [](const tpch::Table& t) {
    auto v = exec::RowsToValue(t.rows, t.schema);
    TRANCE_CHECK(v.ok(), "table conversion");
    return std::move(v).value();
  };
  return {{"Region", conv(d.region)},     {"Nation", conv(d.nation)},
          {"Customer", conv(d.customer)}, {"Orders", conv(d.orders)},
          {"Lineitem", conv(d.lineitem)}, {"Part", conv(d.part)},
          {"Supplier", conv(d.supplier)}, {"Partsupp", conv(d.partsupp)}};
}

struct StandardModeRun {
  Dataset out;
  JobStats stats;
  std::string explain;
};

StandardModeRun RunStandardMode(const nrc::Program& q,
                                const std::map<std::string, Value>& values,
                                bool codec, int threads) {
  runtime::Cluster cluster(Config(threads));
  exec::PipelineOptions opts;
  opts.exec.enable_key_codec = codec;
  exec::Executor executor(&cluster, opts.exec);
  for (const auto& in : q.inputs) {
    auto v = values.find(in.name);
    TRANCE_CHECK(v != values.end(), "missing input");
    auto schema = runtime::Schema::FromBagType(in.type).ValueOrDie();
    auto rows = exec::ValueToRows(v->second, schema).ValueOrDie();
    auto ds = runtime::Source(&cluster, schema, std::move(rows), in.name)
                  .ValueOrDie();
    executor.Register(in.name, std::move(ds));
  }
  plan::PlanProgram compiled;
  StandardModeRun r;
  auto out = exec::RunStandard(q, &executor, opts, &compiled);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (out.ok()) r.out = std::move(out).value();
  r.stats = cluster.stats();
  r.explain = obs::ExplainAnalyze(compiled, r.stats);
  return r;
}

struct ShreddedModeRun {
  exec::ShreddedRun run;
  JobStats stats;
};

ShreddedModeRun RunShreddedMode(const nrc::Program& q,
                                const std::map<std::string, Value>& values,
                                bool codec, int threads) {
  runtime::Cluster cluster(Config(threads));
  exec::PipelineOptions opts;
  opts.exec.enable_key_codec = codec;
  exec::Executor executor(&cluster, opts.exec);
  int64_t seed = 0;
  for (const auto& in : q.inputs) {
    auto v = values.find(in.name);
    TRANCE_CHECK(v != values.end(), "missing input");
    TRANCE_CHECK(
        exec::RegisterShreddedInput(&executor, in.name, in.type, v->second,
                                    seed)
            .ok(),
        "register shredded input");
    seed += 1000000;
  }
  plan::PlanProgram compiled;
  ShreddedModeRun r;
  auto run = exec::RunShredded(q, &executor, opts,
                               shred::MaterializeMode::kDomainElimination,
                               &compiled);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  if (run.ok()) r.run = std::move(run).value();
  r.stats = cluster.stats();
  return r;
}

void ExpectSameShreddedRows(const exec::ShreddedRun& a,
                            const exec::ShreddedRun& b) {
  ExpectSameRows(a.top, b.top);
  ASSERT_EQ(a.dicts.size(), b.dicts.size());
  for (size_t i = 0; i < a.dicts.size(); ++i) {
    SCOPED_TRACE("dict " + a.dicts[i].first);
    EXPECT_EQ(a.dicts[i].first, b.dicts[i].first);
    ExpectSameRows(a.dicts[i].second, b.dicts[i].second);
  }
}

class KeyCodecSuiteTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  enum Kind { kFlatToNested = 0, kNestedToNested = 1, kNestedToFlat = 2 };

  StatusOr<nrc::Program> Query(Kind kind, int depth) {
    switch (kind) {
      case kFlatToNested:
        return tpch::FlatToNested(depth, tpch::Width::kNarrow);
      case kNestedToNested:
        return tpch::NestedToNested(depth, tpch::Width::kNarrow);
      case kNestedToFlat:
        return tpch::NestedToFlat(depth, tpch::Width::kNarrow);
    }
    return Status::Internal("bad kind");
  }

  std::map<std::string, Value> Inputs(Kind kind, int depth) {
    tpch::TpchConfig cfg;
    cfg.scale = 0.0005;
    auto values = TpchValues(tpch::Generate(cfg));
    if (kind == kFlatToNested) return values;
    auto prep = tpch::FlatToNested(depth, tpch::Width::kNarrow).ValueOrDie();
    nrc::Interpreter interp;
    auto nested = interp.EvalProgram(prep, values);
    TRANCE_CHECK(nested.ok(), "nested input prep");
    return {{"COP", nested->at("Q")}, {"Part", values.at("Part")}};
  }
};

TEST_P(KeyCodecSuiteTest, StandardRouteOnOffIdentical) {
  auto [k, depth] = GetParam();
  Kind kind = static_cast<Kind>(k);
  auto q = Query(kind, depth);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto values = Inputs(kind, depth);

  StandardModeRun on1 = RunStandardMode(*q, values, true, 1);
  StandardModeRun on4 = RunStandardMode(*q, values, true, 4);
  StandardModeRun off1 = RunStandardMode(*q, values, false, 1);
  StandardModeRun off4 = RunStandardMode(*q, values, false, 4);

  // Each mode independently keeps the thread-count-independence contract.
  ExpectSameRows(on1.out, on4.out);
  ExpectSameStats(on1.stats, on4.stats);
  EXPECT_EQ(on1.stats.key_encode_bytes(), on4.stats.key_encode_bytes());
  ExpectSameRows(off1.out, off4.out);
  ExpectSameStats(off1.stats, off4.stats);

  // Across modes: identical rows in identical partitions (placement) and
  // identical stats, keyed counters included; only encode bytes may differ.
  ExpectSameRows(on1.out, off1.out);
  ExpectSameStats(on1.stats, off1.stats);
  EXPECT_EQ(off1.stats.key_encode_bytes(), 0u);
}

TEST_P(KeyCodecSuiteTest, ShreddedRouteOnOffIdentical) {
  auto [k, depth] = GetParam();
  Kind kind = static_cast<Kind>(k);
  auto q = Query(kind, depth);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto values = Inputs(kind, depth);

  ShreddedModeRun on1 = RunShreddedMode(*q, values, true, 1);
  ShreddedModeRun on4 = RunShreddedMode(*q, values, true, 4);
  ShreddedModeRun off1 = RunShreddedMode(*q, values, false, 1);
  ShreddedModeRun off4 = RunShreddedMode(*q, values, false, 4);

  ExpectSameShreddedRows(on1.run, on4.run);
  ExpectSameStats(on1.stats, on4.stats);
  ExpectSameShreddedRows(off1.run, off4.run);
  ExpectSameStats(off1.stats, off4.stats);

  ExpectSameShreddedRows(on1.run, off1.run);
  ExpectSameStats(on1.stats, off1.stats);
  EXPECT_EQ(off1.stats.key_encode_bytes(), 0u);
}

std::string KeyCodecParamName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kKinds[] = {"flat_to_nested", "nested_to_nested",
                                 "nested_to_flat"};
  return std::string(kKinds[std::get<0>(info.param)]) + "_depth" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Fig7NarrowSuite, KeyCodecSuiteTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 2, 3, 4)),
    KeyCodecParamName);

// --- Counter plumbing ----------------------------------------------------

TEST(KeyCodecRuntimeTest, DistinctOnOffIdenticalAndCounted) {
  auto run = [](bool codec) {
    runtime::Cluster cluster(Config(1));
    cluster.set_key_codec_enabled(codec);
    std::vector<Row> rows;
    for (int64_t i = 0; i < 1000; ++i) {
      rows.push_back(Row({Field::Int(i % 100),
                          Field::Str("v" + std::to_string(i % 100))}));
    }
    runtime::Schema s(
        {{"k", nrc::Type::Int()}, {"v", nrc::Type::String()}});
    auto ds = runtime::Source(&cluster, s, std::move(rows), "in").ValueOrDie();
    cluster.stats().Reset();
    auto out = runtime::Distinct(&cluster, ds, "dedup").ValueOrDie();
    return std::make_pair(std::move(out), cluster.stats());
  };
  auto [on_out, on_stats] = run(true);
  auto [off_out, off_stats] = run(false);
  ExpectSameRows(on_out, off_out);
  EXPECT_EQ(on_out.NumRows(), 100u);
  // The dedup stage is the last recorded; 100 distinct keys built, 900
  // duplicate membership hits, 10 rows per key — identical in both modes.
  const StageStats& on_stage = on_stats.stages().back();
  const StageStats& off_stage = off_stats.stages().back();
  EXPECT_EQ(on_stage.hash_build_rows, 100u);
  EXPECT_EQ(on_stage.hash_probe_hits, 900u);
  EXPECT_EQ(on_stage.hash_max_chain, 10u);
  EXPECT_EQ(off_stage.hash_build_rows, on_stage.hash_build_rows);
  EXPECT_EQ(off_stage.hash_probe_hits, on_stage.hash_probe_hits);
  EXPECT_EQ(off_stage.hash_max_chain, on_stage.hash_max_chain);
  EXPECT_GT(on_stage.key_encode_bytes, 0u);
  EXPECT_EQ(off_stage.key_encode_bytes, 0u);
}

TEST(KeyCodecRuntimeTest, CountersVisibleInJsonAndExplain) {
  auto q = tpch::FlatToNested(2, tpch::Width::kNarrow);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  tpch::TpchConfig cfg;
  cfg.scale = 0.0005;
  auto values = TpchValues(tpch::Generate(cfg));
  StandardModeRun r = RunStandardMode(*q, values, true, 1);
  EXPECT_GT(r.stats.hash_build_rows(), 0u);
  EXPECT_GT(r.stats.key_encode_bytes(), 0u);

  std::string json = obs::JobStatsToJson(r.stats);
  EXPECT_NE(json.find("\"key_encode_bytes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"hash_build_rows\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"hash_probe_hits\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"hash_max_chain\""), std::string::npos) << json;

  EXPECT_NE(r.explain.find("ht(build="), std::string::npos) << r.explain;
  EXPECT_NE(r.explain.find("key_bytes="), std::string::npos) << r.explain;
}

}  // namespace
}  // namespace trance
