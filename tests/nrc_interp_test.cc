// Unit tests for the NRC reference interpreter (the correctness oracle),
// including the NRC^{Lbl+lambda} constructs used by the shredded pipeline.
#include <gtest/gtest.h>

#include "nrc/builder.h"
#include "nrc/interp.h"
#include "nrc/value.h"

namespace trance {
namespace nrc {
namespace {

using namespace dsl;

Value Tup2(const std::string& a, Value va, const std::string& b, Value vb) {
  return Value::Tuple({{a, std::move(va)}, {b, std::move(vb)}});
}

StatusOr<Value> EvalIn(const ExprPtr& e,
                    std::vector<std::pair<std::string, Value>> bindings) {
  EnvPtr env = Env::Empty();
  for (auto& [n, v] : bindings) env = Env::Bind(env, n, std::move(v));
  Interpreter interp;
  return interp.Eval(e, env);
}

TEST(InterpTest, ConstAndArith) {
  auto v = EvalIn(Mul(Add(I(2), I(3)), I(4)), {});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 20);

  auto r = EvalIn(Add(I(1), R(0.5)), {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_real());
  EXPECT_DOUBLE_EQ(r->AsReal(), 1.5);

  auto div = EvalIn(Div(I(7), I(2)), {});
  ASSERT_TRUE(div.ok());
  EXPECT_DOUBLE_EQ(div->AsReal(), 3.5);

  EXPECT_FALSE(EvalIn(Div(I(1), I(0)), {}).ok());
}

TEST(InterpTest, ComparisonAndBool) {
  auto v = EvalIn(And(Lt(I(1), I(2)), Or(B(false), Ge(R(2.0), I(2)))), {});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->AsBool());
  // Short-circuit: false && <error> is false, not an error.
  auto sc = EvalIn(And(B(false), Eq(Div(I(1), I(0)), I(1))), {});
  ASSERT_TRUE(sc.ok());
  EXPECT_FALSE(sc->AsBool());
}

TEST(InterpTest, ForUnionFlattens) {
  Value r = Value::Bag({Tup2("a", Value::Int(1), "b", Value::Int(10)),
                        Tup2("a", Value::Int(2), "b", Value::Int(20))});
  auto v = EvalIn(For("x", V("R"), SngTup({{"c", V("x.b")}})), {{"R", r}});
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->AsBag().elems.size(), 2u);
  EXPECT_EQ(v->AsBag().elems[0].FieldOrDie("c").AsInt(), 10);
}

TEST(InterpTest, NestedLoopJoinWithIf) {
  Value r = Value::Bag({Tup2("k", Value::Int(1), "a", Value::Str("x")),
                        Tup2("k", Value::Int(2), "a", Value::Str("y"))});
  Value s = Value::Bag({Tup2("k", Value::Int(1), "b", Value::Str("u")),
                        Tup2("k", Value::Int(1), "b", Value::Str("v")),
                        Tup2("k", Value::Int(3), "b", Value::Str("w"))});
  ExprPtr q = For("x", V("R"),
                  For("y", V("S"),
                      If(Eq(V("x.k"), V("y.k")),
                         SngTup({{"a", V("x.a")}, {"b", V("y.b")}}))));
  auto v = EvalIn(q, {{"R", r}, {"S", s}});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsBag().elems.size(), 2u);  // k=1 matches twice
}

TEST(InterpTest, UnionPreservesMultiplicity) {
  Value a = Value::Bag({Value::Int(1), Value::Int(2)});
  Value b = Value::Bag({Value::Int(2)});
  auto v = EvalIn(Expr::Union(V("A"), V("B")), {{"A", a}, {"B", b}});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsBag().elems.size(), 3u);
}

TEST(InterpTest, DedupSetsMultiplicityToOne) {
  Value a = Value::Bag({Value::Int(1), Value::Int(2), Value::Int(2),
                        Value::Int(1), Value::Int(1)});
  auto v = EvalIn(Expr::Dedup(V("A")), {{"A", a}});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsBag().elems.size(), 2u);
}

TEST(InterpTest, GroupByGroupsRemainingAttrs) {
  Value r = Value::Bag({Tup2("k", Value::Int(1), "v", Value::Int(10)),
                        Tup2("k", Value::Int(1), "v", Value::Int(11)),
                        Tup2("k", Value::Int(2), "v", Value::Int(20))});
  auto v = EvalIn(GroupBy({"k"}, V("R")), {{"R", r}});
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->AsBag().elems.size(), 2u);
  const Value& g1 = v->AsBag().elems[0];
  EXPECT_EQ(g1.FieldOrDie("k").AsInt(), 1);
  EXPECT_EQ(g1.FieldOrDie("group").AsBag().elems.size(), 2u);
}

TEST(InterpTest, SumByAggregates) {
  Value r = Value::Bag({Tup2("k", Value::Str("a"), "v", Value::Real(1.5)),
                        Tup2("k", Value::Str("a"), "v", Value::Real(2.5)),
                        Tup2("k", Value::Str("b"), "v", Value::Real(3.0))});
  auto v = EvalIn(SumBy({"k"}, {"v"}, V("R")), {{"R", r}});
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->AsBag().elems.size(), 2u);
  for (const auto& t : v->AsBag().elems) {
    if (t.FieldOrDie("k").AsString() == "a") {
      EXPECT_DOUBLE_EQ(t.FieldOrDie("v").AsReal(), 4.0);
    } else {
      EXPECT_DOUBLE_EQ(t.FieldOrDie("v").AsReal(), 3.0);
    }
  }
}

TEST(InterpTest, SumByKeepsIntegerType) {
  Value r = Value::Bag({Tup2("k", Value::Int(1), "v", Value::Int(2)),
                        Tup2("k", Value::Int(1), "v", Value::Int(3))});
  auto v = EvalIn(SumBy({"k"}, {"v"}, V("R")), {{"R", r}});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->AsBag().elems[0].FieldOrDie("v").is_int());
  EXPECT_EQ(v->AsBag().elems[0].FieldOrDie("v").AsInt(), 5);
}

TEST(InterpTest, IfWithoutElseYieldsEmptyBag) {
  auto v = EvalIn(If(Lt(I(2), I(1)), Sng(I(1))), {});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_bag());
  EXPECT_TRUE(v->AsBag().elems.empty());
}

TEST(InterpTest, GetOnSingleton) {
  auto v = EvalIn(Expr::Get(Sng(I(42))), {});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 42);
}

TEST(InterpTest, LabelsStructuralEquality) {
  // NewLabel with equal captured values compares equal.
  ExprPtr l1 = Expr::NewLabel({{"k", I(7)}});
  ExprPtr l2 = Expr::NewLabel({{"k", I(7)}});
  auto v = EvalIn(Eq(l1, l2), {});
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_TRUE(v->AsBool());
  auto w = EvalIn(Eq(Expr::NewLabel({{"k", I(7)}}), Expr::NewLabel({{"k", I(8)}})),
               {});
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(w->AsBool());
}

TEST(InterpTest, LabelCollapseRule) {
  // NewLabel over a single label parameter is that label.
  Value inner = Value::Label({{"id", Value::Int(3)}});
  ExprPtr e = Eq(Expr::NewLabel({{"wrapped", V("l")}}), V("l"));
  auto v = EvalIn(e, {{"l", inner}});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->AsBool());
}

TEST(InterpTest, MatchLabelBindsParams) {
  // match l = NewLabel(x) then {<k := x.k>}
  ExprPtr body = SngTup({{"k", V("x.k")}});
  ExprPtr e = Expr::MatchLabel(V("l"), "x", body);
  Value lab = Value::Label({{"k", Value::Int(9)}});
  auto v = EvalIn(e, {{"l", lab}});
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->AsBag().elems.size(), 1u);
  EXPECT_EQ(v->AsBag().elems[0].FieldOrDie("k").AsInt(), 9);
}

TEST(InterpTest, MatchLabelMismatchYieldsEmptyBag) {
  ExprPtr body = SngTup({{"k", V("x.nope")}});
  ExprPtr e = Expr::MatchLabel(V("l"), "x", body);
  Value lab = Value::Label({{"k", Value::Int(9)}});
  auto v = EvalIn(e, {{"l", lab}});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->AsBag().elems.empty());
}

TEST(InterpTest, LambdaLookupBetaReduces) {
  // (lambda l. { <x := 1> })(some label)
  ExprPtr lam = Expr::Lambda("l", SngTup({{"x", I(1)}}));
  ExprPtr e = Expr::Lookup(lam, Expr::NewLabel({{"k", I(1)}}));
  auto v = EvalIn(e, {});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsBag().elems.size(), 1u);
}

TEST(InterpTest, MatLookupScansLabelValuePairs) {
  Value lab1 = Value::Label({{"id", Value::Int(1)}});
  Value lab2 = Value::Label({{"id", Value::Int(2)}});
  Value dict = Value::Bag(
      {Tup2("label", lab1, "value", Value::Bag({Value::Int(10)})),
       Tup2("label", lab2, "value", Value::Bag({Value::Int(20)})),
       Tup2("label", lab1, "value", Value::Bag({Value::Int(11)}))});
  auto v = EvalIn(Expr::MatLookup(V("D"), V("l")), {{"D", dict}, {"l", lab1}});
  ASSERT_TRUE(v.ok());
  // Both entries for lab1 union together.
  EXPECT_EQ(v->AsBag().elems.size(), 2u);
}

TEST(InterpTest, EvalProgramSequencesAssignments) {
  Program p;
  p.inputs.push_back({"R", BagTu({{"a", Type::Int()}})});
  p.assignments.push_back(
      {"X", For("r", V("R"), SngTup({{"a", Add(V("r.a"), I(1))}}))});
  p.assignments.push_back(
      {"Y", For("x", V("X"), SngTup({{"a", Mul(V("x.a"), I(2))}}))});
  Interpreter interp;
  Value r = Value::Bag({Value::Tuple({{"a", Value::Int(1)}}),
                        Value::Tuple({{"a", Value::Int(2)}})});
  auto out = interp.EvalProgram(p, {{"R", r}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const Value& y = out->at("Y");
  ASSERT_EQ(y.AsBag().elems.size(), 2u);
  std::vector<int64_t> got;
  for (const auto& t : y.AsBag().elems) {
    got.push_back(t.FieldOrDie("a").AsInt());
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int64_t>{4, 6}));
}

TEST(InterpTest, DeepBagEqualsIgnoresOrder) {
  Value a = Value::Bag({Value::Int(1), Value::Int(2)});
  Value b = Value::Bag({Value::Int(2), Value::Int(1)});
  EXPECT_TRUE(DeepBagEquals(a, b));
  Value c = Value::Bag({Value::Int(2), Value::Int(2)});
  EXPECT_FALSE(DeepBagEquals(a, c));
  // Nested bags compare as multisets too.
  Value n1 = Value::Bag({Value::Tuple({{"g", a}})});
  Value n2 = Value::Bag({Value::Tuple({{"g", b}})});
  EXPECT_TRUE(DeepBagEquals(n1, n2));
}

TEST(InterpTest, RunningExampleEndToEnd) {
  // Example 1 on a small instance.
  auto part = Value::Bag(
      {Value::Tuple({{"pid", Value::Int(1)},
                     {"pname", Value::Str("bolt")},
                     {"price", Value::Real(2.0)}}),
       Value::Tuple({{"pid", Value::Int(2)},
                     {"pname", Value::Str("nut")},
                     {"price", Value::Real(1.0)}})});
  auto oparts1 = Value::Bag(
      {Tup2("pid", Value::Int(1), "qty", Value::Real(3.0)),
       Tup2("pid", Value::Int(2), "qty", Value::Real(4.0)),
       Tup2("pid", Value::Int(1), "qty", Value::Real(1.0))});
  auto corders = Value::Bag(
      {Tup2("odate", Value::Int(100), "oparts", oparts1),
       Tup2("odate", Value::Int(200), "oparts", Value::EmptyBag())});
  auto cop = Value::Bag({Tup2("cname", Value::Str("alice"), "corders",
                              corders),
                         Tup2("cname", Value::Str("bob"), "corders",
                              Value::EmptyBag())});

  ExprPtr q = For(
      "cop", V("COP"),
      SngTup(
          {{"cname", V("cop.cname")},
           {"corders",
            For("co", V("cop.corders"),
                SngTup({{"odate", V("co.odate")},
                        {"oparts",
                         SumBy({"pname"}, {"total"},
                               For("op", V("co.oparts"),
                                   For("p", V("Part"),
                                       If(Eq(V("op.pid"), V("p.pid")),
                                          SngTup({{"pname", V("p.pname")},
                                                  {"total",
                                                   Mul(V("op.qty"),
                                                       V("p.price"))}})))))}}))}}));
  auto v = EvalIn(q, {{"COP", cop}, {"Part", part}});
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_EQ(v->AsBag().elems.size(), 2u);
  // alice keeps both orders; the empty order yields an empty oparts bag.
  for (const auto& c : v->AsBag().elems) {
    if (c.FieldOrDie("cname").AsString() == "alice") {
      const auto& ords = c.FieldOrDie("corders").AsBag().elems;
      ASSERT_EQ(ords.size(), 2u);
      for (const auto& o : ords) {
        if (o.FieldOrDie("odate").AsInt() == 100) {
          const auto& parts = o.FieldOrDie("oparts").AsBag().elems;
          ASSERT_EQ(parts.size(), 2u);
          for (const auto& pt : parts) {
            if (pt.FieldOrDie("pname").AsString() == "bolt") {
              EXPECT_DOUBLE_EQ(pt.FieldOrDie("total").AsReal(), 8.0);
            } else {
              EXPECT_DOUBLE_EQ(pt.FieldOrDie("total").AsReal(), 4.0);
            }
          }
        } else {
          EXPECT_TRUE(o.FieldOrDie("oparts").AsBag().elems.empty());
        }
      }
    } else {
      EXPECT_TRUE(c.FieldOrDie("corders").AsBag().elems.empty());
    }
  }
}

}  // namespace
}  // namespace nrc
}  // namespace trance
