// End-to-end tests of the standard compilation route (Section 3):
// NRC -> unnesting -> optimized plan -> distributed execution, checked
// against the reference interpreter on every query shape the paper's
// benchmarks use (flat-to-flat joins, flat-to-nested grouping at several
// depths, nested-to-nested with aggregation, nested-to-flat).
#include <gtest/gtest.h>

#include "exec/pipeline.h"
#include "nrc/builder.h"
#include "nrc/interp.h"
#include "nrc/printer.h"
#include "util/random.h"

namespace trance {
namespace {

using namespace nrc::dsl;
using nrc::BagValue;
using nrc::DeepBagEquals;
using nrc::Expr;
using nrc::ExprPtr;
using nrc::Program;
using nrc::Type;
using nrc::TypePtr;
using nrc::Value;

Value T2(const std::string& a, Value va, const std::string& b, Value vb) {
  return Value::Tuple({{a, std::move(va)}, {b, std::move(vb)}});
}

/// Runs the program through interpreter and the standard route; expects
/// deep multiset equality.
void ExpectAgreement(const Program& program,
                     const std::map<std::string, Value>& inputs,
                     exec::PipelineOptions options = {}) {
  nrc::Interpreter interp;
  auto oracle = interp.EvalProgram(program, inputs);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  const Value& expected = oracle->at(program.result().var);

  runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 5});
  auto got = exec::RunStandardOnValues(program, inputs, &cluster, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(DeepBagEquals(expected, *got))
      << "interpreter: " << nrc::Canonicalize(expected).ToString()
      << "\nstandard:    " << nrc::Canonicalize(*got).ToString()
      << "\nprogram:\n" << nrc::PrintProgram(program);
}

// --- Fixtures -------------------------------------------------------------

TypePtr CopType() {
  return BagTu(
      {{"cname", Type::String()},
       {"corders",
        BagTu({{"odate", Type::Int()},
               {"oparts",
                BagTu({{"pid", Type::Int()}, {"qty", Type::Real()}})}})}});
}

TypePtr PartType() {
  return BagTu({{"pid", Type::Int()},
                {"pname", Type::String()},
                {"price", Type::Real()}});
}

Value MakePart() {
  return Value::Bag({
      Value::Tuple({{"pid", Value::Int(1)},
                    {"pname", Value::Str("bolt")},
                    {"price", Value::Real(2.0)}}),
      Value::Tuple({{"pid", Value::Int(2)},
                    {"pname", Value::Str("nut")},
                    {"price", Value::Real(1.0)}}),
      Value::Tuple({{"pid", Value::Int(3)},
                    {"pname", Value::Str("gear")},
                    {"price", Value::Real(5.0)}}),
  });
}

Value MakeCop() {
  auto oparts1 = Value::Bag({T2("pid", Value::Int(1), "qty", Value::Real(3)),
                             T2("pid", Value::Int(2), "qty", Value::Real(4)),
                             T2("pid", Value::Int(1), "qty", Value::Real(1)),
                             T2("pid", Value::Int(9), "qty", Value::Real(7))});
  auto oparts2 = Value::Bag({T2("pid", Value::Int(3), "qty", Value::Real(2))});
  auto corders_a =
      Value::Bag({T2("odate", Value::Int(100), "oparts", oparts1),
                  T2("odate", Value::Int(200), "oparts", Value::EmptyBag()),
                  T2("odate", Value::Int(300), "oparts", oparts2)});
  return Value::Bag(
      {T2("cname", Value::Str("alice"), "corders", corders_a),
       T2("cname", Value::Str("bob"), "corders", Value::EmptyBag())});
}

ExprPtr RunningExampleQuery() {
  return For(
      "cop", V("COP"),
      SngTup(
          {{"cname", V("cop.cname")},
           {"corders",
            For("co", V("cop.corders"),
                SngTup({{"odate", V("co.odate")},
                        {"oparts",
                         SumBy({"pname"}, {"total"},
                               For("op", V("co.oparts"),
                                   For("p", V("Part"),
                                       If(Eq(V("op.pid"), V("p.pid")),
                                          SngTup({{"pname", V("p.pname")},
                                                  {"total",
                                                   Mul(V("op.qty"),
                                                       V("p.price"))}})))))}}))}}));
}

// --- Tests ----------------------------------------------------------------

TEST(StandardPipelineTest, FlatJoinProjection) {
  Program p;
  p.inputs = {{"R", BagTu({{"k", Type::Int()}, {"a", Type::Int()}})},
              {"S", BagTu({{"k", Type::Int()}, {"b", Type::Int()}})}};
  p.assignments.push_back(
      {"Q", For("r", V("R"),
                For("s", V("S"),
                    If(Eq(V("r.k"), V("s.k")),
                       SngTup({{"a", V("r.a")}, {"b", V("s.b")}}))))});
  Value r = Value::Bag({T2("k", Value::Int(1), "a", Value::Int(10)),
                        T2("k", Value::Int(2), "a", Value::Int(20)),
                        T2("k", Value::Int(2), "a", Value::Int(21))});
  Value s = Value::Bag({T2("k", Value::Int(2), "b", Value::Int(200)),
                        T2("k", Value::Int(3), "b", Value::Int(300))});
  ExpectAgreement(p, {{"R", r}, {"S", s}});
}

TEST(StandardPipelineTest, FlatSelection) {
  Program p;
  p.inputs = {{"R", BagTu({{"k", Type::Int()}, {"a", Type::Int()}})}};
  p.assignments.push_back(
      {"Q", For("r", V("R"),
                If(Gt(V("r.a"), I(15)), SngTup({{"k", V("r.k")}})))});
  Value r = Value::Bag({T2("k", Value::Int(1), "a", Value::Int(10)),
                        T2("k", Value::Int(2), "a", Value::Int(20))});
  ExpectAgreement(p, {{"R", r}});
}

TEST(StandardPipelineTest, FlatSumBy) {
  Program p;
  p.inputs = {{"R", BagTu({{"k", Type::Int()}, {"v", Type::Real()}})}};
  p.assignments.push_back(
      {"Q", SumBy({"k"}, {"v"},
                  For("r", V("R"),
                      SngTup({{"k", V("r.k")}, {"v", V("r.v")}})))});
  Value r = Value::Bag({T2("k", Value::Int(1), "v", Value::Real(1.5)),
                        T2("k", Value::Int(1), "v", Value::Real(2.5)),
                        T2("k", Value::Int(2), "v", Value::Real(4.0))});
  ExpectAgreement(p, {{"R", r}});
}

TEST(StandardPipelineTest, FlatDedup) {
  Program p;
  p.inputs = {{"R", BagTu({{"k", Type::Int()}})}};
  p.assignments.push_back(
      {"Q", Expr::Dedup(For("r", V("R"), SngTup({{"k", V("r.k")}})))});
  Value r = Value::Bag({Value::Tuple({{"k", Value::Int(1)}}),
                        Value::Tuple({{"k", Value::Int(1)}}),
                        Value::Tuple({{"k", Value::Int(2)}})});
  ExpectAgreement(p, {{"R", r}});
}

TEST(StandardPipelineTest, FlatToNestedOneLevel) {
  // Group orders under customers via a correlated subquery (the paper's
  // flat-to-nested shape); customers without orders keep empty bags.
  Program p;
  p.inputs = {
      {"Cust", BagTu({{"ck", Type::Int()}, {"cname", Type::String()}})},
      {"Ord", BagTu({{"ck", Type::Int()}, {"odate", Type::Int()}})}};
  p.assignments.push_back(
      {"Q", For("c", V("Cust"),
                SngTup({{"cname", V("c.cname")},
                        {"orders",
                         For("o", V("Ord"),
                             If(Eq(V("o.ck"), V("c.ck")),
                                SngTup({{"odate", V("o.odate")}})))}}))});
  Value cust = Value::Bag({T2("ck", Value::Int(1), "cname", Value::Str("a")),
                           T2("ck", Value::Int(2), "cname", Value::Str("b")),
                           T2("ck", Value::Int(3), "cname", Value::Str("c"))});
  Value ord = Value::Bag({T2("ck", Value::Int(1), "odate", Value::Int(7)),
                          T2("ck", Value::Int(1), "odate", Value::Int(8)),
                          T2("ck", Value::Int(2), "odate", Value::Int(9))});
  ExpectAgreement(p, {{"Cust", cust}, {"Ord", ord}});
  // SparkSQL mode (no cogroup) must agree too.
  ExpectAgreement(p, {{"Cust", cust}, {"Ord", ord}},
                  exec::PipelineOptions::SparkSql());
}

TEST(StandardPipelineTest, FlatToNestedTwoLevels) {
  Program p;
  p.inputs = {
      {"Cust", BagTu({{"ck", Type::Int()}, {"cname", Type::String()}})},
      {"Ord", BagTu({{"ok", Type::Int()},
                     {"ck", Type::Int()},
                     {"odate", Type::Int()}})},
      {"Item", BagTu({{"ok", Type::Int()},
                      {"pid", Type::Int()},
                      {"qty", Type::Real()}})}};
  p.assignments.push_back(
      {"Q",
       For("c", V("Cust"),
           SngTup({{"cname", V("c.cname")},
                   {"orders",
                    For("o", V("Ord"),
                        If(Eq(V("o.ck"), V("c.ck")),
                           SngTup({{"odate", V("o.odate")},
                                   {"items",
                                    For("l", V("Item"),
                                        If(Eq(V("l.ok"), V("o.ok")),
                                           SngTup({{"pid", V("l.pid")},
                                                   {"qty",
                                                    V("l.qty")}})))}})))}}))});
  Value cust = Value::Bag({T2("ck", Value::Int(1), "cname", Value::Str("a")),
                           T2("ck", Value::Int(2), "cname", Value::Str("b"))});
  Value ord = Value::Bag(
      {Value::Tuple({{"ok", Value::Int(10)},
                     {"ck", Value::Int(1)},
                     {"odate", Value::Int(100)}}),
       Value::Tuple({{"ok", Value::Int(11)},
                     {"ck", Value::Int(1)},
                     {"odate", Value::Int(200)}})});
  Value item = Value::Bag(
      {Value::Tuple({{"ok", Value::Int(10)},
                     {"pid", Value::Int(1)},
                     {"qty", Value::Real(2)}}),
       Value::Tuple({{"ok", Value::Int(10)},
                     {"pid", Value::Int(2)},
                     {"qty", Value::Real(3)}}),
       Value::Tuple({{"ok", Value::Int(99)},
                     {"pid", Value::Int(3)},
                     {"qty", Value::Real(4)}})});
  ExpectAgreement(p, {{"Cust", cust}, {"Ord", ord}, {"Item", item}});
}

TEST(StandardPipelineTest, RunningExampleNestedToNested) {
  Program p;
  p.inputs = {{"COP", CopType()}, {"Part", PartType()}};
  p.assignments.push_back({"Q", RunningExampleQuery()});
  ExpectAgreement(p, {{"COP", MakeCop()}, {"Part", MakePart()}});
  ExpectAgreement(p, {{"COP", MakeCop()}, {"Part", MakePart()}},
                  exec::PipelineOptions::SparkSql());
}

TEST(StandardPipelineTest, NestedToFlatTopLevelAggregate) {
  // Navigate all levels and aggregate at the top (nested-to-flat).
  Program p;
  p.inputs = {{"COP", CopType()}, {"Part", PartType()}};
  p.assignments.push_back(
      {"Q", SumBy({"cname"}, {"total"},
                  For("cop", V("COP"),
                      For("co", V("cop.corders"),
                          For("op", V("co.oparts"),
                              For("p", V("Part"),
                                  If(Eq(V("op.pid"), V("p.pid")),
                                     SngTup({{"cname", V("cop.cname")},
                                             {"total",
                                              Mul(V("op.qty"),
                                                  V("p.price"))}})))))))});
  ExpectAgreement(p, {{"COP", MakeCop()}, {"Part", MakePart()}});
}

TEST(StandardPipelineTest, NestedPassthroughBagAttribute) {
  // Keep an inner bag wholesale while renaming top-level attrs.
  Program p;
  p.inputs = {{"COP", CopType()}};
  p.assignments.push_back(
      {"Q", For("cop", V("COP"),
                SngTup({{"name", V("cop.cname")},
                        {"orders", V("cop.corders")}}))});
  ExpectAgreement(p, {{"COP", MakeCop()}});
}

TEST(StandardPipelineTest, GroupByInsideLevel) {
  // groupBy at a nested level.
  Program p;
  p.inputs = {{"R", BagTu({{"g", Type::Int()},
                           {"k", Type::Int()},
                           {"v", Type::Int()}})},
              {"Keys", BagTu({{"g", Type::Int()}})}};
  p.assignments.push_back(
      {"Q",
       For("x", V("Keys"),
           SngTup({{"g", V("x.g")},
                   {"groups",
                    GroupBy({"k"},
                            For("r", V("R"),
                                If(Eq(V("r.g"), V("x.g")),
                                   SngTup({{"k", V("r.k")},
                                           {"v", V("r.v")}}))))}}))});
  Value keys = Value::Bag({Value::Tuple({{"g", Value::Int(1)}}),
                           Value::Tuple({{"g", Value::Int(2)}})});
  Value r = Value::Bag(
      {Value::Tuple({{"g", Value::Int(1)},
                     {"k", Value::Int(5)},
                     {"v", Value::Int(50)}}),
       Value::Tuple({{"g", Value::Int(1)},
                     {"k", Value::Int(5)},
                     {"v", Value::Int(51)}}),
       Value::Tuple({{"g", Value::Int(1)},
                     {"k", Value::Int(6)},
                     {"v", Value::Int(60)}})});
  ExpectAgreement(p, {{"Keys", keys}, {"R", r}});
}

TEST(StandardPipelineTest, MultiAssignmentProgram) {
  // A two-step pipeline where the second query consumes the first's nested
  // output (the nested-to-nested benchmark pattern).
  Program p;
  p.inputs = {
      {"Cust", BagTu({{"ck", Type::Int()}, {"cname", Type::String()}})},
      {"Ord", BagTu({{"ck", Type::Int()}, {"amount", Type::Real()}})}};
  p.assignments.push_back(
      {"Nested",
       For("c", V("Cust"),
           SngTup({{"cname", V("c.cname")},
                   {"orders", For("o", V("Ord"),
                                  If(Eq(V("o.ck"), V("c.ck")),
                                     SngTup({{"amount", V("o.amount")}})))}}))});
  p.assignments.push_back(
      {"Q", For("n", V("Nested"),
                SngTup({{"cname", V("n.cname")},
                        {"sums", SumBy({}, {"amount"},
                                       For("o", V("n.orders"),
                                           SngTup({{"amount",
                                                    V("o.amount")}})))}}))});
  Value cust = Value::Bag({T2("ck", Value::Int(1), "cname", Value::Str("a")),
                           T2("ck", Value::Int(2), "cname", Value::Str("b"))});
  Value ord = Value::Bag({T2("ck", Value::Int(1), "amount", Value::Real(5)),
                          T2("ck", Value::Int(1), "amount", Value::Real(7))});
  ExpectAgreement(p, {{"Cust", cust}, {"Ord", ord}});
}

TEST(StandardPipelineTest, RandomizedFlatToNestedProperty) {
  // Property sweep: random relations, standard route == interpreter.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<Value> custs, ords;
    int nc = 2 + static_cast<int>(rng.Uniform(6));
    int no = static_cast<int>(rng.Uniform(30));
    for (int i = 0; i < nc; ++i) {
      custs.push_back(T2("ck", Value::Int(i), "cname",
                         Value::Str(rng.NextString(3))));
    }
    for (int i = 0; i < no; ++i) {
      ords.push_back(T2("ck", Value::Int(rng.UniformRange(0, nc + 1)),
                        "odate", Value::Int(rng.UniformRange(0, 5))));
    }
    Program p;
    p.inputs = {
        {"Cust", BagTu({{"ck", Type::Int()}, {"cname", Type::String()}})},
        {"Ord", BagTu({{"ck", Type::Int()}, {"odate", Type::Int()}})}};
    p.assignments.push_back(
        {"Q", For("c", V("Cust"),
                  SngTup({{"cname", V("c.cname")},
                          {"orders",
                           For("o", V("Ord"),
                               If(Eq(V("o.ck"), V("c.ck")),
                                  SngTup({{"odate", V("o.odate")}})))}}))});
    ExpectAgreement(p, {{"Cust", Value::Bag(custs)}, {"Ord", Value::Bag(ords)}});
  }
}

TEST(StandardPipelineTest, SkewAwareModeAgrees) {
  // Skew-aware execution must not change results, only data placement.
  Program p;
  p.inputs = {{"R", BagTu({{"k", Type::Int()}, {"a", Type::Int()}})},
              {"S", BagTu({{"k", Type::Int()}, {"b", Type::Int()}})}};
  p.assignments.push_back(
      {"Q", For("r", V("R"),
                For("s", V("S"),
                    If(Eq(V("r.k"), V("s.k")),
                       SngTup({{"a", V("r.a")}, {"b", V("s.b")}}))))});
  // Heavily skewed R: most rows share k=7.
  std::vector<Value> rrows, srows;
  for (int i = 0; i < 300; ++i) {
    rrows.push_back(T2("k", Value::Int(7), "a", Value::Int(i)));
  }
  for (int i = 0; i < 20; ++i) {
    rrows.push_back(T2("k", Value::Int(100 + i), "a", Value::Int(i)));
    srows.push_back(T2("k", Value::Int(100 + i), "b", Value::Int(i)));
  }
  srows.push_back(T2("k", Value::Int(7), "b", Value::Int(1000)));
  exec::PipelineOptions skew_opts;
  skew_opts.exec.skew_aware = true;
  skew_opts.exec.auto_broadcast = false;
  ExpectAgreement(p, {{"R", Value::Bag(rrows)}, {"S", Value::Bag(srows)}},
                  skew_opts);
}

}  // namespace
}  // namespace trance

namespace trance {
namespace {
using namespace nrc::dsl;

TEST(OptimizerOptionTest, AggPushdownAgrees) {
  // Pushing Gamma-plus past the join must not change results, with and
  // without nesting around the aggregation.
  nrc::Program p;
  p.inputs = {{"COP", BagTu({{"cname", nrc::Type::String()},
                             {"corders",
                              BagTu({{"odate", nrc::Type::Int()},
                                     {"oparts",
                                      BagTu({{"pid", nrc::Type::Int()},
                                             {"qty", nrc::Type::Real()}})}})}})},
              {"Part", BagTu({{"pid", nrc::Type::Int()},
                              {"pname", nrc::Type::String()},
                              {"price", nrc::Type::Real()}})}};
  p.assignments.push_back(
      {"Q", SumBy({"pname"}, {"total"},
                  For("cop", V("COP"),
                      For("co", V("cop.corders"),
                          For("op", V("co.oparts"),
                              For("p2", V("Part"),
                                  If(Eq(V("op.pid"), V("p2.pid")),
                                     SngTup({{"pname", V("p2.pname")},
                                             {"total",
                                              Mul(V("op.qty"),
                                                  V("p2.price"))}})))))))});
  Rng rng(11);
  std::vector<nrc::Value> parts, cops;
  for (int i = 0; i < 6; ++i) {
    parts.push_back(nrc::Value::Tuple(
        {{"pid", nrc::Value::Int(i)},
         {"pname", nrc::Value::Str("p" + std::to_string(i % 3))},
         {"price", nrc::Value::Real(1.0 + i)}}));
  }
  for (int c = 0; c < 4; ++c) {
    std::vector<nrc::Value> orders;
    for (int o = 0; o < 3; ++o) {
      std::vector<nrc::Value> ops;
      for (int k = 0; k < 4; ++k) {
        ops.push_back(nrc::Value::Tuple(
            {{"pid", nrc::Value::Int(rng.UniformRange(0, 7))},
             {"qty", nrc::Value::Real(1 + rng.NextDouble())}}));
      }
      orders.push_back(nrc::Value::Tuple(
          {{"odate", nrc::Value::Int(o)}, {"oparts", nrc::Value::Bag(ops)}}));
    }
    cops.push_back(nrc::Value::Tuple(
        {{"cname", nrc::Value::Str("c" + std::to_string(c))},
         {"corders", nrc::Value::Bag(orders)}}));
  }
  std::map<std::string, nrc::Value> inputs{
      {"COP", nrc::Value::Bag(cops)}, {"Part", nrc::Value::Bag(parts)}};

  nrc::Interpreter interp;
  auto oracle = interp.EvalProgram(p, inputs);
  ASSERT_TRUE(oracle.ok());

  exec::PipelineOptions opts;
  opts.optimizer.enable_agg_pushdown = true;
  {
    runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 5});
    auto got = exec::RunStandardOnValues(p, inputs, &cluster, opts);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(nrc::ApproxDeepBagEquals(oracle->at("Q"), *got));
  }
  {
    runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 5});
    auto got = exec::RunShreddedOnValues(p, inputs, &cluster, opts);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(nrc::ApproxDeepBagEquals(oracle->at("Q"), *got));
  }
}

}  // namespace
}  // namespace trance
