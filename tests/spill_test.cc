// Out-of-core spill tests (ctest label `spill`).
//
// The acceptance contract of runtime/spill.h: a Fig-7 query that hard-fails
// with ResourceExhausted under a reduced partition_memory_cap completes when
// ExecOptions::enable_spill is on, with rows, placement, and every
// pre-existing JobStats counter bit-identical to an uncapped run — at 1, 4,
// and 8 threads, on both compilation routes. Spill cost appears only in the
// spill-only counters (and EXPLAIN ANALYZE / JSON export), which are exactly
// 0 when nothing spills. Plus SpillManager unit coverage: deterministic run
// naming, order-preserving spill-and-restore, and the spill byte budget.
#include "runtime/spill.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "exec/bridge.h"
#include "exec/pipeline.h"
#include "nrc/interp.h"
#include "obs/explain.h"
#include "obs/export.h"
#include "runtime/cluster.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace trance {
namespace {

using nrc::Value;
using runtime::Dataset;
using runtime::JobStats;
using runtime::Row;
using runtime::StageStats;
using runtime::Field;

// The forced cap: far below the working set of every suite query at scale
// 0.0005 (partitions run tens of KB), so a spill-off capped run FAILs and a
// spill-on capped run must actually hit the disk.
constexpr uint64_t kTinyCap = 4ull << 10;

runtime::ClusterConfig Config(int num_threads, uint64_t cap) {
  runtime::ClusterConfig c;
  c.num_partitions = 8;
  c.num_threads = num_threads;
  if (cap > 0) c.partition_memory_cap = cap;
  return c;
}

void ExpectSameRows(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.NumPartitions(), b.NumPartitions());
  for (size_t p = 0; p < a.NumPartitions(); ++p) {
    ASSERT_EQ(a.PartitionRowCount(p), b.PartitionRowCount(p))
        << "partition " << p;
    for (size_t i = 0; i < a.PartitionRowCount(p); ++i) {
      const Row ra = a.RowAt(p, i);
      const Row rb = b.RowAt(p, i);
      ASSERT_EQ(ra.fields.size(), rb.fields.size())
          << "partition " << p << " row " << i;
      for (size_t f = 0; f < ra.fields.size(); ++f) {
        EXPECT_EQ(ra.fields[f], rb.fields[f])
            << "partition " << p << " row " << i << " field " << f;
      }
    }
  }
}

/// Full JobStats equality except wall-clock and the spill-only counters
/// (checked separately: nonzero when forced, zero otherwise). Every
/// pre-existing counter — movement, fusion, keyed, flat-table, and columnar
/// telemetry — must be spill-invariant.
void ExpectSameStats(const JobStats& a, const JobStats& b) {
  EXPECT_EQ(a.total_shuffle_bytes(), b.total_shuffle_bytes());
  EXPECT_EQ(a.max_stage_shuffle_bytes(), b.max_stage_shuffle_bytes());
  EXPECT_EQ(a.peak_partition_bytes(), b.peak_partition_bytes());
  EXPECT_EQ(a.fused_stages(), b.fused_stages());
  EXPECT_EQ(a.intermediate_bytes_avoided(), b.intermediate_bytes_avoided());
  EXPECT_EQ(a.sim_seconds(), b.sim_seconds());
  EXPECT_EQ(a.key_encode_bytes(), b.key_encode_bytes());
  EXPECT_EQ(a.hash_build_rows(), b.hash_build_rows());
  EXPECT_EQ(a.hash_probe_hits(), b.hash_probe_hits());
  EXPECT_EQ(a.hash_max_chain(), b.hash_max_chain());
  EXPECT_EQ(a.hash_table_bytes(), b.hash_table_bytes());
  EXPECT_EQ(a.hash_resizes(), b.hash_resizes());
  EXPECT_EQ(a.hash_probe_len_max(), b.hash_probe_len_max());
  EXPECT_EQ(a.columnar_bytes(), b.columnar_bytes());
  EXPECT_EQ(a.column_to_row_conversions(), b.column_to_row_conversions());
  ASSERT_EQ(a.stages().size(), b.stages().size());
  for (size_t i = 0; i < a.stages().size(); ++i) {
    const StageStats& sa = a.stages()[i];
    const StageStats& sb = b.stages()[i];
    SCOPED_TRACE("stage " + std::to_string(i) + " (" + sa.op + ")");
    EXPECT_EQ(sa.op, sb.op);
    EXPECT_EQ(sa.scope, sb.scope);
    EXPECT_EQ(sa.rows_in, sb.rows_in);
    EXPECT_EQ(sa.rows_out, sb.rows_out);
    EXPECT_EQ(sa.shuffle_bytes, sb.shuffle_bytes);
    EXPECT_EQ(sa.total_work_bytes, sb.total_work_bytes);
    EXPECT_EQ(sa.mem_high_water_bytes, sb.mem_high_water_bytes);
    EXPECT_EQ(sa.partition_work_bytes, sb.partition_work_bytes);
    EXPECT_EQ(sa.partition_recv_bytes, sb.partition_recv_bytes);
    EXPECT_EQ(sa.partition_send_bytes, sb.partition_send_bytes);
    EXPECT_EQ(sa.key_encode_bytes, sb.key_encode_bytes);
    EXPECT_EQ(sa.hash_build_rows, sb.hash_build_rows);
    EXPECT_EQ(sa.hash_probe_hits, sb.hash_probe_hits);
    EXPECT_EQ(sa.hash_max_chain, sb.hash_max_chain);
    EXPECT_EQ(sa.hash_table_bytes, sb.hash_table_bytes);
    EXPECT_EQ(sa.sim_seconds, sb.sim_seconds);
  }
}

std::map<std::string, Value> TpchValues(const tpch::TpchData& d) {
  auto conv = [](const tpch::Table& t) {
    auto v = exec::RowsToValue(t.rows, t.schema);
    TRANCE_CHECK(v.ok(), "table conversion");
    return std::move(v).value();
  };
  return {{"Region", conv(d.region)},     {"Nation", conv(d.nation)},
          {"Customer", conv(d.customer)}, {"Orders", conv(d.orders)},
          {"Lineitem", conv(d.lineitem)}, {"Part", conv(d.part)},
          {"Supplier", conv(d.supplier)}, {"Partsupp", conv(d.partsupp)}};
}

struct ModeRun {
  bool ok = false;
  Status status = Status::OK();
  Dataset out;
  JobStats stats;
  std::string explain;
};

/// Runs the standard route with a configurable cap and spill flag, without
/// aborting on failure (capped spill-off runs are SUPPOSED to fail).
ModeRun RunStandardMode(const nrc::Program& q,
                        const std::map<std::string, Value>& values,
                        int threads, uint64_t cap, bool spill,
                        bool columnar = true) {
  runtime::Cluster cluster(Config(threads, cap));
  exec::PipelineOptions opts;
  opts.exec.enable_spill = spill;
  opts.exec.enable_columnar = columnar;
  exec::Executor executor(&cluster, opts.exec);
  ModeRun r;
  for (const auto& in : q.inputs) {
    auto v = values.find(in.name);
    TRANCE_CHECK(v != values.end(), "missing input");
    auto schema = runtime::Schema::FromBagType(in.type).ValueOrDie();
    auto rows = exec::ValueToRows(v->second, schema).ValueOrDie();
    auto ds = runtime::Source(&cluster, schema, std::move(rows), in.name);
    if (!ds.ok()) {
      r.status = ds.status();
      r.stats = cluster.stats();
      return r;
    }
    executor.Register(in.name, std::move(ds).value());
  }
  plan::PlanProgram compiled;
  auto out = exec::RunStandard(q, &executor, opts, &compiled);
  r.stats = cluster.stats();
  if (!out.ok()) {
    r.status = out.status();
    return r;
  }
  r.ok = true;
  r.out = std::move(out).value();
  r.explain = obs::ExplainAnalyze(compiled, r.stats);
  return r;
}

struct ShreddedModeRun {
  bool ok = false;
  Status status = Status::OK();
  exec::ShreddedRun run;
  JobStats stats;
};

ShreddedModeRun RunShreddedMode(const nrc::Program& q,
                                const std::map<std::string, Value>& values,
                                int threads, uint64_t cap, bool spill) {
  runtime::Cluster cluster(Config(threads, cap));
  exec::PipelineOptions opts;
  opts.exec.enable_spill = spill;
  exec::Executor executor(&cluster, opts.exec);
  ShreddedModeRun r;
  int64_t seed = 0;
  for (const auto& in : q.inputs) {
    auto v = values.find(in.name);
    TRANCE_CHECK(v != values.end(), "missing input");
    Status reg = exec::RegisterShreddedInput(&executor, in.name, in.type,
                                             v->second, seed);
    if (!reg.ok()) {
      r.status = reg;
      r.stats = cluster.stats();
      return r;
    }
    seed += 1000000;
  }
  auto run = exec::RunShredded(q, &executor, opts);
  r.stats = cluster.stats();
  if (!run.ok()) {
    r.status = run.status();
    return r;
  }
  r.ok = true;
  r.run = std::move(run).value();
  return r;
}

void ExpectSameShreddedRows(const exec::ShreddedRun& a,
                            const exec::ShreddedRun& b) {
  ExpectSameRows(a.top, b.top);
  ASSERT_EQ(a.dicts.size(), b.dicts.size());
  for (size_t i = 0; i < a.dicts.size(); ++i) {
    SCOPED_TRACE("dict " + a.dicts[i].first);
    EXPECT_EQ(a.dicts[i].first, b.dicts[i].first);
    ExpectSameRows(a.dicts[i].second, b.dicts[i].second);
  }
}

void ExpectZeroSpill(const JobStats& s) {
  EXPECT_EQ(s.spill_bytes_written(), 0u);
  EXPECT_EQ(s.spill_bytes_read(), 0u);
  EXPECT_EQ(s.spill_runs(), 0u);
  EXPECT_EQ(s.spill_merge_passes(), 0u);
}

class SpillSuiteTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  enum Kind { kFlatToNested = 0, kNestedToNested = 1, kNestedToFlat = 2 };

  StatusOr<nrc::Program> Query(Kind kind, int depth) {
    switch (kind) {
      case kFlatToNested:
        return tpch::FlatToNested(depth, tpch::Width::kNarrow);
      case kNestedToNested:
        return tpch::NestedToNested(depth, tpch::Width::kNarrow);
      case kNestedToFlat:
        return tpch::NestedToFlat(depth, tpch::Width::kNarrow);
    }
    return Status::Internal("bad kind");
  }

  std::map<std::string, Value> Inputs(Kind kind, int depth) {
    tpch::TpchConfig cfg;
    cfg.scale = 0.0005;
    auto values = TpchValues(tpch::Generate(cfg));
    if (kind == kFlatToNested) return values;
    auto prep = tpch::FlatToNested(depth, tpch::Width::kNarrow).ValueOrDie();
    nrc::Interpreter interp;
    auto nested = interp.EvalProgram(prep, values);
    TRANCE_CHECK(nested.ok(), "nested input prep");
    return {{"COP", nested->at("Q")}, {"Part", values.at("Part")}};
  }
};

TEST_P(SpillSuiteTest, CappedStandardRunMatchesUncapped) {
  auto [k, depth] = GetParam();
  Kind kind = static_cast<Kind>(k);
  auto q = Query(kind, depth);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto values = Inputs(kind, depth);

  // The paper's FAIL cell: the tiny cap hard-fails without spilling.
  ModeRun fail = RunStandardMode(*q, values, 1, kTinyCap, false);
  ASSERT_FALSE(fail.ok);
  EXPECT_TRUE(fail.status.IsResourceExhausted()) << fail.status.ToString();
  EXPECT_NE(fail.status.ToString().find("worker memory saturated"),
            std::string::npos)
      << fail.status.ToString();

  // The same cap with spilling on completes...
  ModeRun uncapped = RunStandardMode(*q, values, 1, 0, true);
  ASSERT_TRUE(uncapped.ok) << uncapped.status.ToString();
  ModeRun spill1 = RunStandardMode(*q, values, 1, kTinyCap, true);
  ASSERT_TRUE(spill1.ok) << spill1.status.ToString();

  // ...with identical rows in identical partitions and identical
  // pre-existing stats, and real spill traffic.
  ExpectSameRows(uncapped.out, spill1.out);
  ExpectSameStats(uncapped.stats, spill1.stats);
  EXPECT_GT(spill1.stats.spill_runs(), 0u);
  EXPECT_GT(spill1.stats.spill_bytes_written(), 0u);
  EXPECT_EQ(spill1.stats.spill_bytes_read(),
            spill1.stats.spill_bytes_written());
  EXPECT_GT(spill1.stats.spill_merge_passes(), 0u);
  // The uncapped run (256 MiB default cap) never touches the disk.
  ExpectZeroSpill(uncapped.stats);

  // Thread-count invariance covers the spill counters too: spill decisions
  // are byte-threshold-driven and folded in partition order.
  ModeRun spill4 = RunStandardMode(*q, values, 4, kTinyCap, true);
  ModeRun spill8 = RunStandardMode(*q, values, 8, kTinyCap, true);
  ASSERT_TRUE(spill4.ok) << spill4.status.ToString();
  ASSERT_TRUE(spill8.ok) << spill8.status.ToString();
  ExpectSameRows(spill1.out, spill4.out);
  ExpectSameRows(spill1.out, spill8.out);
  ExpectSameStats(spill1.stats, spill4.stats);
  ExpectSameStats(spill1.stats, spill8.stats);
  EXPECT_EQ(spill1.stats.spill_bytes_written(),
            spill4.stats.spill_bytes_written());
  EXPECT_EQ(spill1.stats.spill_bytes_written(),
            spill8.stats.spill_bytes_written());
  EXPECT_EQ(spill1.stats.spill_runs(), spill4.stats.spill_runs());
  EXPECT_EQ(spill1.stats.spill_runs(), spill8.stats.spill_runs());
  EXPECT_EQ(spill1.stats.spill_merge_passes(),
            spill4.stats.spill_merge_passes());
  EXPECT_EQ(spill1.stats.spill_merge_passes(),
            spill8.stats.spill_merge_passes());
}

TEST_P(SpillSuiteTest, CappedShreddedRunMatchesUncapped) {
  auto [k, depth] = GetParam();
  Kind kind = static_cast<Kind>(k);
  auto q = Query(kind, depth);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto values = Inputs(kind, depth);

  ShreddedModeRun uncapped = RunShreddedMode(*q, values, 1, 0, true);
  ASSERT_TRUE(uncapped.ok) << uncapped.status.ToString();
  ShreddedModeRun spill1 = RunShreddedMode(*q, values, 1, kTinyCap, true);
  ASSERT_TRUE(spill1.ok) << spill1.status.ToString();
  ShreddedModeRun spill4 = RunShreddedMode(*q, values, 4, kTinyCap, true);
  ASSERT_TRUE(spill4.ok) << spill4.status.ToString();
  ShreddedModeRun spill8 = RunShreddedMode(*q, values, 8, kTinyCap, true);
  ASSERT_TRUE(spill8.ok) << spill8.status.ToString();

  ExpectSameShreddedRows(uncapped.run, spill1.run);
  ExpectSameStats(uncapped.stats, spill1.stats);
  EXPECT_GT(spill1.stats.spill_runs(), 0u);
  ExpectZeroSpill(uncapped.stats);

  ExpectSameShreddedRows(spill1.run, spill4.run);
  ExpectSameShreddedRows(spill1.run, spill8.run);
  ExpectSameStats(spill1.stats, spill4.stats);
  ExpectSameStats(spill1.stats, spill8.stats);
  EXPECT_EQ(spill1.stats.spill_bytes_written(),
            spill4.stats.spill_bytes_written());
  EXPECT_EQ(spill1.stats.spill_bytes_written(),
            spill8.stats.spill_bytes_written());
}

std::string SpillParamName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kKinds[] = {"flat_to_nested", "nested_to_nested",
                                 "nested_to_flat"};
  return std::string(kKinds[std::get<0>(info.param)]) + "_depth" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Fig7NarrowSuite, SpillSuiteTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(0, 2)),
                         SpillParamName);

// --- observability plumbing ----------------------------------------------

TEST(SpillRuntimeTest, CountersVisibleInJsonAndExplain) {
  auto q = tpch::FlatToNested(2, tpch::Width::kNarrow);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  tpch::TpchConfig cfg;
  cfg.scale = 0.0005;
  auto values = TpchValues(tpch::Generate(cfg));

  ModeRun forced = RunStandardMode(*q, values, 1, kTinyCap, true);
  ASSERT_TRUE(forced.ok) << forced.status.ToString();
  EXPECT_GT(forced.stats.spill_bytes_written(), 0u);

  std::string json = obs::JobStatsToJson(forced.stats);
  EXPECT_NE(json.find("\"spill_bytes_written\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"spill_bytes_read\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"spill_runs\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"spill_merge_passes\""), std::string::npos) << json;

  EXPECT_NE(forced.explain.find(" spill("), std::string::npos)
      << forced.explain;

  // Unforced: no spill clause in EXPLAIN, but the JSON totals still carry
  // the (zero) keys so bench_diff can gate on them.
  ModeRun easy = RunStandardMode(*q, values, 1, 0, true);
  ASSERT_TRUE(easy.ok) << easy.status.ToString();
  ExpectZeroSpill(easy.stats);
  EXPECT_EQ(easy.explain.find(" spill("), std::string::npos) << easy.explain;
  std::string easy_json = obs::JobStatsToJson(easy.stats);
  EXPECT_NE(easy_json.find("\"spill_bytes_written\""), std::string::npos)
      << easy_json;
}

TEST(SpillRuntimeTest, BlockResidentSpillAvoidsRowification) {
  // Block-resident partitions spill as columnar serde records: every row
  // that round-trips through disk without being rowified is counted in
  // spill_rowify_avoided. The row route (columnar off) writes row batches
  // and reports zero. The counter is visible in the JSON export and the
  // EXPLAIN spill clause.
  auto q = tpch::FlatToNested(2, tpch::Width::kNarrow);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  tpch::TpchConfig cfg;
  cfg.scale = 0.0005;
  auto values = TpchValues(tpch::Generate(cfg));

  ModeRun col = RunStandardMode(*q, values, 1, kTinyCap, true, true);
  ASSERT_TRUE(col.ok) << col.status.ToString();
  EXPECT_GT(col.stats.spill_runs(), 0u);
  EXPECT_GT(col.stats.spill_rowify_avoided(), 0u);
  std::string json = obs::JobStatsToJson(col.stats);
  EXPECT_NE(json.find("\"spill_rowify_avoided\""), std::string::npos) << json;
  EXPECT_NE(col.explain.find("rowify_avoided="), std::string::npos)
      << col.explain;

  ModeRun row = RunStandardMode(*q, values, 1, kTinyCap, true, false);
  ASSERT_TRUE(row.ok) << row.status.ToString();
  EXPECT_GT(row.stats.spill_runs(), 0u);
  EXPECT_EQ(row.stats.spill_rowify_avoided(), 0u);

  // Thread-count invariance, like every other spill counter.
  ModeRun col4 = RunStandardMode(*q, values, 4, kTinyCap, true, true);
  ASSERT_TRUE(col4.ok) << col4.status.ToString();
  EXPECT_EQ(col.stats.spill_rowify_avoided(),
            col4.stats.spill_rowify_avoided());
}

TEST(SpillRuntimeTest, DisabledSpillKeepsHistoricalFailureShape) {
  // enable_spill=false must reproduce the pre-spill world exactly: the
  // ResourceExhausted message names the stage, the partition, the observed
  // bytes, and the configured cap.
  auto q = tpch::FlatToNested(1, tpch::Width::kNarrow);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  tpch::TpchConfig cfg;
  cfg.scale = 0.0005;
  auto values = TpchValues(tpch::Generate(cfg));
  ModeRun fail = RunStandardMode(*q, values, 1, kTinyCap, false);
  ASSERT_FALSE(fail.ok);
  std::string msg = fail.status.ToString();
  EXPECT_TRUE(fail.status.IsResourceExhausted()) << msg;
  EXPECT_NE(msg.find("worker memory saturated in"), std::string::npos) << msg;
  EXPECT_NE(msg.find("partition"), std::string::npos) << msg;
  EXPECT_NE(msg.find("holds"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bytes) > cap"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(" + std::to_string(kTinyCap) + " bytes)"),
            std::string::npos)
      << msg;
  ExpectZeroSpill(fail.stats);
}

// --- SpillManager unit tests ----------------------------------------------

std::vector<Row> MakeRows(size_t n, const std::string& salt) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Row{{Field::Int(static_cast<int64_t>(i)),
                        Field::Str(salt + std::to_string(i)),
                        Field::Real(i * 0.5)}});
  }
  return rows;
}

TEST(SpillManagerTest, RunNamingIsDeterministicAndSanitized) {
  runtime::spill::SpillConfig cfg;
  cfg.dir = ::testing::TempDir();
  runtime::spill::SpillManager m(cfg);
  std::string p = m.RunPath(7, "shuffle(join/x y)", 3, 2);
  // Same inputs, same path; hostile characters flattened to '_'.
  EXPECT_EQ(p, m.RunPath(7, "shuffle(join/x y)", 3, 2));
  EXPECT_NE(p.find("job7/"), std::string::npos) << p;
  EXPECT_NE(p.find("shuffle_join_x_y_-p3-r2.trs"), std::string::npos) << p;
  EXPECT_EQ(p.find(' ', m.root_dir().size()), std::string::npos) << p;
}

TEST(SpillManagerTest, SpillAndRestorePreservesOrderAndReleasesDisk) {
  runtime::spill::SpillConfig cfg;
  cfg.dir = ::testing::TempDir();
  cfg.max_run_bytes = 1024;  // force several runs
  runtime::spill::SpillManager m(cfg);
  std::vector<Row> rows = MakeRows(500, "value-");
  std::vector<Row> expected = rows;
  runtime::spill::SpillCounters c;
  Status s = m.SpillAndRestoreRows(1, "stage(x)", 0, &rows, &c);
  ASSERT_TRUE(s.ok()) << s.ToString();

  ASSERT_EQ(rows.size(), expected.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(rows[i].fields.size(), expected[i].fields.size()) << i;
    for (size_t f = 0; f < rows[i].fields.size(); ++f) {
      EXPECT_EQ(rows[i].fields[f], expected[i].fields[f])
          << "row " << i << " field " << f;
    }
  }
  EXPECT_GT(c.runs, 1u);  // max_run_bytes forced a split
  EXPECT_EQ(c.merge_passes, 1u);
  EXPECT_GT(c.bytes_written, 0u);
  EXPECT_EQ(c.bytes_read, c.bytes_written);
  // Runs are removed after restore: nothing left on disk or in the budget.
  EXPECT_EQ(m.on_disk_bytes(), 0u);
  EXPECT_EQ(m.total_runs(), c.runs);
}

TEST(SpillManagerTest, ByteBudgetExhaustionNamesBudgetAndUsage) {
  runtime::spill::SpillConfig cfg;
  cfg.dir = ::testing::TempDir();
  cfg.max_spill_bytes = 64;  // smaller than any real run
  runtime::spill::SpillManager m(cfg);
  std::vector<Row> rows = MakeRows(100, "big-");
  runtime::spill::SpillCounters c;
  Status s = m.SpillAndRestoreRows(2, "stage(y)", 0, &rows, &c);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  EXPECT_NE(s.ToString().find("spill byte budget exhausted"),
            std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find("budget"), std::string::npos) << s.ToString();
}

TEST(SpillManagerTest, RemoveRunReleasesBudget) {
  runtime::spill::SpillConfig cfg;
  cfg.dir = ::testing::TempDir();
  cfg.max_spill_bytes = 16ull << 10;
  runtime::spill::SpillManager m(cfg);
  std::vector<Row> rows = MakeRows(50, "r-");
  runtime::spill::SpillCounters c;
  std::string path = m.RunPath(3, "budget", 0, 0);
  ASSERT_TRUE(m.WriteRowsRun(path, rows, &c).ok());
  EXPECT_GT(m.on_disk_bytes(), 0u);
  // A second identical run would fit or not — irrelevant; removing the first
  // must return the budget to zero either way.
  m.RemoveRun(path);
  EXPECT_EQ(m.on_disk_bytes(), 0u);
  // With the budget released the same run can be written again.
  ASSERT_TRUE(m.WriteRowsRun(path, rows, &c).ok());
  m.RemoveRun(path);
}

TEST(SpillManagerTest, BlockRunsRoundTripThroughReadRun) {
  runtime::spill::SpillConfig cfg;
  cfg.dir = ::testing::TempDir();
  runtime::spill::SpillManager m(cfg);
  runtime::Schema schema(
      {{"k", nrc::Type::Int()}, {"s", nrc::Type::String()}});
  std::vector<Row> rows = MakeRows(64, "blk-");
  for (auto& r : rows) r.fields.pop_back();  // match the two-column schema
  runtime::column::PartitionBlock block =
      runtime::column::PartitionBlock::FromRows(schema, rows);
  ASSERT_FALSE(block.ragged());

  runtime::spill::SpillCounters c;
  std::string path = m.RunPath(4, "blocks", 1, 0);
  ASSERT_TRUE(m.WriteBlockRun(path, block, &c).ok());
  std::vector<Row> back;
  uint64_t block_rows = 0;
  ASSERT_TRUE(m.ReadRun(path, &back, &block_rows, &c).ok());
  m.RemoveRun(path);

  EXPECT_EQ(block_rows, rows.size());
  ASSERT_EQ(back.size(), rows.size());
  for (size_t i = 0; i < back.size(); ++i) {
    for (size_t f = 0; f < back[i].fields.size(); ++f) {
      EXPECT_EQ(back[i].fields[f], rows[i].fields[f])
          << "row " << i << " field " << f;
    }
  }
  EXPECT_EQ(c.bytes_read, c.bytes_written);
}

}  // namespace
}  // namespace trance
