// Stage-fusion equivalence: every Fig-7 narrow-suite query, through both
// compilation routes, must produce identical per-partition rows, identical
// shuffle bytes, and identical EXPLAIN ANALYZE per-operator row counts with
// fusion on and off, at 1 and 4 threads. Fusion is purely an execution
// strategy — it changes how many stages run, never what they compute.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exec/bridge.h"
#include "exec/pipeline.h"
#include "nrc/interp.h"
#include "obs/explain.h"
#include "runtime/cluster.h"
#include "runtime/ops.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace trance {
namespace {

using nrc::Value;
using runtime::Dataset;
using runtime::JobStats;
using runtime::Row;
using runtime::StageStats;

runtime::ClusterConfig Config(int num_threads) {
  runtime::ClusterConfig c;
  c.num_partitions = 8;
  c.num_threads = num_threads;
  return c;
}

void ExpectSameRows(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.NumPartitions(), b.NumPartitions());
  for (size_t p = 0; p < a.NumPartitions(); ++p) {
    ASSERT_EQ(a.PartitionRowCount(p), b.PartitionRowCount(p))
        << "partition " << p;
    for (size_t i = 0; i < a.PartitionRowCount(p); ++i) {
      const Row ra = a.RowAt(p, i);
      const Row rb = b.RowAt(p, i);
      ASSERT_EQ(ra.fields.size(), rb.fields.size())
          << "partition " << p << " row " << i;
      for (size_t f = 0; f < ra.fields.size(); ++f) {
        EXPECT_EQ(ra.fields[f], rb.fields[f])
            << "partition " << p << " row " << i << " field " << f;
      }
    }
  }
}

/// Full JobStats equality except wall-clock fields: used to check that each
/// fusion mode independently keeps the PR-2 contract (stats are a function
/// of the data, not the thread count).
void ExpectSameStats(const JobStats& a, const JobStats& b) {
  EXPECT_EQ(a.total_shuffle_bytes(), b.total_shuffle_bytes());
  EXPECT_EQ(a.max_stage_shuffle_bytes(), b.max_stage_shuffle_bytes());
  EXPECT_EQ(a.peak_partition_bytes(), b.peak_partition_bytes());
  EXPECT_EQ(a.fused_stages(), b.fused_stages());
  EXPECT_EQ(a.intermediate_bytes_avoided(), b.intermediate_bytes_avoided());
  EXPECT_EQ(a.sim_seconds(), b.sim_seconds());
  ASSERT_EQ(a.stages().size(), b.stages().size());
  for (size_t i = 0; i < a.stages().size(); ++i) {
    const StageStats& sa = a.stages()[i];
    const StageStats& sb = b.stages()[i];
    SCOPED_TRACE("stage " + std::to_string(i) + " (" + sa.op + ")");
    EXPECT_EQ(sa.op, sb.op);
    EXPECT_EQ(sa.scope, sb.scope);
    EXPECT_EQ(sa.rows_in, sb.rows_in);
    EXPECT_EQ(sa.rows_out, sb.rows_out);
    EXPECT_EQ(sa.shuffle_bytes, sb.shuffle_bytes);
    EXPECT_EQ(sa.total_work_bytes, sb.total_work_bytes);
    EXPECT_EQ(sa.mem_high_water_bytes, sb.mem_high_water_bytes);
    EXPECT_EQ(sa.partition_work_bytes, sb.partition_work_bytes);
    EXPECT_EQ(sa.intermediate_bytes_avoided, sb.intermediate_bytes_avoided);
    ASSERT_EQ(sa.fused_transforms.size(), sb.fused_transforms.size());
    for (size_t t = 0; t < sa.fused_transforms.size(); ++t) {
      EXPECT_EQ(sa.fused_transforms[t].op, sb.fused_transforms[t].op);
      EXPECT_EQ(sa.fused_transforms[t].scope, sb.fused_transforms[t].scope);
      EXPECT_EQ(sa.fused_transforms[t].rows_out,
                sb.fused_transforms[t].rows_out);
    }
    EXPECT_EQ(sa.sim_seconds, sb.sim_seconds);
  }
}

/// (operator label, rows) pairs extracted from EXPLAIN ANALYZE, in tree
/// order. The per-operator row counts must not depend on the fusion mode.
std::vector<std::pair<std::string, long long>> ExplainRowCounts(
    const std::string& explain) {
  std::vector<std::pair<std::string, long long>> out;
  std::istringstream is(explain);
  std::string line;
  while (std::getline(is, line)) {
    size_t bracket = line.find("  [rows=");
    if (bracket == std::string::npos) continue;
    std::string label = line.substr(0, bracket);
    size_t start = label.find_first_not_of(' ');
    label = start == std::string::npos ? "" : label.substr(start);
    long long rows = std::strtoll(line.c_str() + bracket + 8, nullptr, 10);
    out.emplace_back(std::move(label), rows);
  }
  return out;
}

std::map<std::string, Value> TpchValues(const tpch::TpchData& d) {
  auto conv = [](const tpch::Table& t) {
    auto v = exec::RowsToValue(t.rows, t.schema);
    TRANCE_CHECK(v.ok(), "table conversion");
    return std::move(v).value();
  };
  return {{"Region", conv(d.region)},     {"Nation", conv(d.nation)},
          {"Customer", conv(d.customer)}, {"Orders", conv(d.orders)},
          {"Lineitem", conv(d.lineitem)}, {"Part", conv(d.part)},
          {"Supplier", conv(d.supplier)}, {"Partsupp", conv(d.partsupp)}};
}

struct StandardModeRun {
  Dataset out;
  JobStats stats;
  std::string explain;
};

StandardModeRun RunStandardMode(const nrc::Program& q,
                                const std::map<std::string, Value>& values,
                                bool fusion, int threads) {
  runtime::Cluster cluster(Config(threads));
  exec::PipelineOptions opts;
  opts.exec.enable_stage_fusion = fusion;
  exec::Executor executor(&cluster, opts.exec);
  for (const auto& in : q.inputs) {
    auto v = values.find(in.name);
    TRANCE_CHECK(v != values.end(), "missing input");
    auto schema = runtime::Schema::FromBagType(in.type).ValueOrDie();
    auto rows = exec::ValueToRows(v->second, schema).ValueOrDie();
    auto ds = runtime::Source(&cluster, schema, std::move(rows), in.name)
                  .ValueOrDie();
    executor.Register(in.name, std::move(ds));
  }
  plan::PlanProgram compiled;
  StandardModeRun r;
  auto out = exec::RunStandard(q, &executor, opts, &compiled);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (out.ok()) r.out = std::move(out).value();
  r.stats = cluster.stats();
  r.explain = obs::ExplainAnalyze(compiled, r.stats);
  return r;
}

struct ShreddedModeRun {
  exec::ShreddedRun run;
  JobStats stats;
  std::string explain;
};

ShreddedModeRun RunShreddedMode(const nrc::Program& q,
                                const std::map<std::string, Value>& values,
                                bool fusion, int threads) {
  runtime::Cluster cluster(Config(threads));
  exec::PipelineOptions opts;
  opts.exec.enable_stage_fusion = fusion;
  exec::Executor executor(&cluster, opts.exec);
  int64_t seed = 0;
  for (const auto& in : q.inputs) {
    auto v = values.find(in.name);
    TRANCE_CHECK(v != values.end(), "missing input");
    TRANCE_CHECK(
        exec::RegisterShreddedInput(&executor, in.name, in.type, v->second,
                                    seed)
            .ok(),
        "register shredded input");
    seed += 1000000;
  }
  plan::PlanProgram compiled;
  ShreddedModeRun r;
  auto run = exec::RunShredded(q, &executor, opts,
                               shred::MaterializeMode::kDomainElimination,
                               &compiled);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  if (run.ok()) r.run = std::move(run).value();
  r.stats = cluster.stats();
  r.explain = obs::ExplainAnalyze(compiled, r.stats);
  return r;
}

void ExpectSameShreddedRows(const exec::ShreddedRun& a,
                            const exec::ShreddedRun& b) {
  ExpectSameRows(a.top, b.top);
  ASSERT_EQ(a.dicts.size(), b.dicts.size());
  for (size_t i = 0; i < a.dicts.size(); ++i) {
    SCOPED_TRACE("dict " + a.dicts[i].first);
    EXPECT_EQ(a.dicts[i].first, b.dicts[i].first);
    ExpectSameRows(a.dicts[i].second, b.dicts[i].second);
  }
}

class FusionSuiteTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  /// The three Fig-7 narrow-suite query kinds; nested-input kinds prepare
  /// COP by interpreting the flat-to-nested query of the same depth.
  enum Kind { kFlatToNested = 0, kNestedToNested = 1, kNestedToFlat = 2 };

  StatusOr<nrc::Program> Query(Kind kind, int depth) {
    switch (kind) {
      case kFlatToNested:
        return tpch::FlatToNested(depth, tpch::Width::kNarrow);
      case kNestedToNested:
        return tpch::NestedToNested(depth, tpch::Width::kNarrow);
      case kNestedToFlat:
        return tpch::NestedToFlat(depth, tpch::Width::kNarrow);
    }
    return Status::Internal("bad kind");
  }

  std::map<std::string, Value> Inputs(Kind kind, int depth) {
    tpch::TpchConfig cfg;
    cfg.scale = 0.0005;
    auto values = TpchValues(tpch::Generate(cfg));
    if (kind == kFlatToNested) return values;
    auto prep = tpch::FlatToNested(depth, tpch::Width::kNarrow).ValueOrDie();
    nrc::Interpreter interp;
    auto nested = interp.EvalProgram(prep, values);
    TRANCE_CHECK(nested.ok(), "nested input prep");
    return {{"COP", nested->at("Q")}, {"Part", values.at("Part")}};
  }
};

TEST_P(FusionSuiteTest, StandardRouteOnOffIdentical) {
  auto [k, depth] = GetParam();
  Kind kind = static_cast<Kind>(k);
  auto q = Query(kind, depth);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto values = Inputs(kind, depth);

  StandardModeRun on1 = RunStandardMode(*q, values, true, 1);
  StandardModeRun on4 = RunStandardMode(*q, values, true, 4);
  StandardModeRun off1 = RunStandardMode(*q, values, false, 1);
  StandardModeRun off4 = RunStandardMode(*q, values, false, 4);

  // Each mode keeps the thread-count-independence contract in full.
  ExpectSameRows(on1.out, on4.out);
  ExpectSameStats(on1.stats, on4.stats);
  ExpectSameRows(off1.out, off4.out);
  ExpectSameStats(off1.stats, off4.stats);

  // Across modes: same rows in the same partitions, same shuffle volume,
  // same per-operator row counts in EXPLAIN ANALYZE.
  ExpectSameRows(on1.out, off1.out);
  EXPECT_EQ(on1.stats.total_shuffle_bytes(), off1.stats.total_shuffle_bytes());
  EXPECT_EQ(on1.stats.max_stage_shuffle_bytes(),
            off1.stats.max_stage_shuffle_bytes());
  EXPECT_EQ(ExplainRowCounts(on1.explain), ExplainRowCounts(off1.explain))
      << "fusion ON:\n" << on1.explain << "fusion OFF:\n" << off1.explain;

  EXPECT_EQ(off1.stats.fused_stages(), 0u);
  EXPECT_EQ(off1.stats.intermediate_bytes_avoided(), 0u);
  if (depth >= 1) {
    EXPECT_GT(on1.stats.fused_stages(), 0u) << on1.explain;
    EXPECT_GT(on1.stats.intermediate_bytes_avoided(), 0u);
  }
}

TEST_P(FusionSuiteTest, ShreddedRouteOnOffIdentical) {
  auto [k, depth] = GetParam();
  Kind kind = static_cast<Kind>(k);
  auto q = Query(kind, depth);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto values = Inputs(kind, depth);

  ShreddedModeRun on1 = RunShreddedMode(*q, values, true, 1);
  ShreddedModeRun on4 = RunShreddedMode(*q, values, true, 4);
  ShreddedModeRun off1 = RunShreddedMode(*q, values, false, 1);
  ShreddedModeRun off4 = RunShreddedMode(*q, values, false, 4);

  ExpectSameShreddedRows(on1.run, on4.run);
  ExpectSameStats(on1.stats, on4.stats);
  ExpectSameShreddedRows(off1.run, off4.run);
  ExpectSameStats(off1.stats, off4.stats);

  ExpectSameShreddedRows(on1.run, off1.run);
  EXPECT_EQ(on1.stats.total_shuffle_bytes(), off1.stats.total_shuffle_bytes());
  EXPECT_EQ(on1.stats.max_stage_shuffle_bytes(),
            off1.stats.max_stage_shuffle_bytes());
  EXPECT_EQ(ExplainRowCounts(on1.explain), ExplainRowCounts(off1.explain))
      << "fusion ON:\n" << on1.explain << "fusion OFF:\n" << off1.explain;

  EXPECT_EQ(off1.stats.fused_stages(), 0u);
  EXPECT_EQ(off1.stats.intermediate_bytes_avoided(), 0u);
}

std::string FusionParamName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* kKinds[] = {"flat_to_nested", "nested_to_nested",
                                 "nested_to_flat"};
  return std::string(kKinds[std::get<0>(info.param)]) + "_depth" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Fig7NarrowSuite, FusionSuiteTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 2, 3, 4)),
    FusionParamName);

}  // namespace
}  // namespace trance
