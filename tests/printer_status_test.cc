// Tests for the pretty-printers (NRC and plan notation), Status/StatusOr
// plumbing, and assorted utility behaviours.
#include <gtest/gtest.h>

#include "nrc/builder.h"
#include "nrc/printer.h"
#include "plan/printer.h"
#include "plan/unnest.h"
#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"

namespace trance {
namespace {

using namespace nrc::dsl;
using nrc::Expr;
using nrc::Type;

TEST(StatusTest, CodesAndMessages) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status oom = Status::ResourceExhausted("partition full");
  EXPECT_TRUE(oom.IsResourceExhausted());
  EXPECT_NE(oom.ToString().find("partition full"), std::string::npos);
  Status inv = Status::Invalid("bad");
  EXPECT_EQ(inv.code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, StatusOrPropagation) {
  auto f = [](bool fail) -> StatusOr<int> {
    if (fail) return Status::Invalid("nope");
    return 42;
  };
  auto g = [&](bool fail) -> StatusOr<int> {
    TRANCE_ASSIGN_OR_RETURN(int v, f(fail));
    return v + 1;
  };
  EXPECT_EQ(*g(false), 43);
  EXPECT_FALSE(g(true).ok());
  EXPECT_EQ(g(true).status().code(), StatusCode::kInvalidArgument);
}

TEST(PrinterTest, ProgramRendering) {
  nrc::Program p;
  p.inputs = {{"R", BagTu({{"k", Type::Int()}})}};
  p.assignments.push_back(
      {"Q", For("r", V("R"), If(Gt(V("r.k"), I(0)),
                                SngTup({{"k", V("r.k")}})))});
  std::string s = nrc::PrintProgram(p);
  EXPECT_NE(s.find("input R : Bag(<k: int>)"), std::string::npos);
  EXPECT_NE(s.find("Q <= for r in R union"), std::string::npos);
  EXPECT_NE(s.find("if r.k > 0 then"), std::string::npos);
}

TEST(PrinterTest, LabelConstructsRender) {
  nrc::ExprPtr e = Expr::Lookup(Expr::Var("D"),
                                Expr::NewLabel({{"k", V("x.k")}}));
  std::string s = nrc::PrintExpr(e);
  EXPECT_NE(s.find("Lookup(D, NewLabel(k := x.k))"), std::string::npos);
  nrc::ExprPtr m = Expr::MatchLabel(Expr::Var("l"), "m",
                                    SngTup({{"k", V("m.k")}}),
                                    Type::Tuple({{"k", Type::Int()}}));
  EXPECT_NE(nrc::PrintExpr(m).find("match l = NewLabel(m) then"),
            std::string::npos);
}

TEST(PlanPrinterTest, OperatorVocabulary) {
  nrc::TypeEnv env{{"R", BagTu({{"k", Type::Int()}, {"a", Type::Int()}})},
                   {"S", BagTu({{"k", Type::Int()}, {"b", Type::Int()}})}};
  plan::Unnester u(env);
  auto p = u.Compile(
      For("r", V("R"),
          SngTup({{"a", V("r.a")},
                  {"bs", For("s", V("S"),
                             If(Eq(V("s.k"), V("r.k")),
                                SngTup({{"b", V("s.b")}})))}})));
  ASSERT_TRUE(p.ok());
  std::string s = plan::PrintPlan(*p);
  EXPECT_NE(s.find("Scan(R)"), std::string::npos);
  EXPECT_NE(s.find("OuterJoin["), std::string::npos);
  EXPECT_NE(s.find("AddIndex["), std::string::npos);
  EXPECT_NE(s.find("NestU["), std::string::npos);
}

TEST(UtilTest, FormattingHelpers) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KB");
  EXPECT_EQ(FormatBytes(3ull << 20), "3.0 MB");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(UtilTest, RngDeterminismAndRanges) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(UtilTest, ZipfSkewShape) {
  Rng rng(4);
  ZipfSampler uniform(100, 0.0);
  ZipfSampler skewed(100, 2.0);
  int uniform_rank0 = 0, skewed_rank0 = 0;
  for (int i = 0; i < 5000; ++i) {
    if (uniform.Sample(&rng) == 0) ++uniform_rank0;
    if (skewed.Sample(&rng) == 0) ++skewed_rank0;
  }
  // Zipf(2) puts >50% of mass on rank 0 of 100; uniform ~1%.
  EXPECT_GT(skewed_rank0, 2000);
  EXPECT_LT(uniform_rank0, 200);
}

}  // namespace
}  // namespace trance
