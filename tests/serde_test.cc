// Binary spill-format round-trip and corruption tests (ctest label `serde`).
//
// The runtime/serde.h wire format (docs/STORAGE.md) must round-trip every
// Field value bit-exactly — nulls, int64 extremes, exact IEEE doubles (NaN
// payloads included), strings, bools, recursive labels, recursive bags — in
// both record kinds (row batches and columnar blocks, typed and ragged, with
// null bitmaps and the variant fallback). And it must reject, with a clean
// Status (never a crash, never partial rows), every malformed input we can
// produce: truncation at any byte, single-byte corruption anywhere in the
// file, checksum tampering, a bad magic, and a version from the future.
#include "runtime/serde.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "runtime/column.h"
#include "runtime/field.h"
#include "runtime/schema.h"

namespace trance {
namespace runtime {
namespace {

namespace serde = ::trance::runtime::serde;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/trance_serde_" + name + ".trs";
}

// Field equality that is stricter than operator== where the format promises
// more: reals compare by bit pattern (NaN payloads and -0.0 vs 0.0 survive
// the disk), and int must come back as int (no numeric coercion).
void ExpectFieldBitEq(const Field& a, const Field& b, const std::string& at) {
  if (a.is_real() || b.is_real()) {
    ASSERT_TRUE(a.is_real() && b.is_real()) << at;
    uint64_t ba = 0, bb = 0;
    double va = a.AsReal(), vb = b.AsReal();
    std::memcpy(&ba, &va, sizeof(ba));
    std::memcpy(&bb, &vb, sizeof(bb));
    EXPECT_EQ(ba, bb) << at;
    return;
  }
  if (a.is_int() || b.is_int()) {
    ASSERT_TRUE(a.is_int() && b.is_int()) << at;
    EXPECT_EQ(a.AsInt(), b.AsInt()) << at;
    return;
  }
  if (a.is_label() && b.is_label() && a.AsLabel() != nullptr &&
      b.AsLabel() != nullptr) {
    const auto& pa = a.AsLabel()->params;
    const auto& pb = b.AsLabel()->params;
    ASSERT_EQ(pa.size(), pb.size()) << at;
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].first, pb[i].first) << at;
      ExpectFieldBitEq(pa[i].second, pb[i].second,
                       at + ".label[" + pa[i].first + "]");
    }
    return;
  }
  if (a.is_bag() && b.is_bag() && a.AsBag() != nullptr && b.AsBag() != nullptr) {
    const auto& ra = *a.AsBag();
    const auto& rb = *b.AsBag();
    ASSERT_EQ(ra.size(), rb.size()) << at;
    for (size_t i = 0; i < ra.size(); ++i) {
      ASSERT_EQ(ra[i].fields.size(), rb[i].fields.size()) << at;
      for (size_t f = 0; f < ra[i].fields.size(); ++f) {
        ExpectFieldBitEq(ra[i].fields[f], rb[i].fields[f],
                         at + ".bag[" + std::to_string(i) + "][" +
                             std::to_string(f) + "]");
      }
    }
    return;
  }
  EXPECT_TRUE(a == b) << at;
}

void ExpectRowsBitEq(const std::vector<Row>& a, const std::vector<Row>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].fields.size(), b[i].fields.size()) << "row " << i;
    for (size_t f = 0; f < a[i].fields.size(); ++f) {
      ExpectFieldBitEq(a[i].fields[f], b[i].fields[f],
                       "row " + std::to_string(i) + " field " +
                           std::to_string(f));
    }
  }
}

// --- randomized field generator ------------------------------------------

Field RandomField(std::mt19937_64* rng, int depth);

Row RandomRow(std::mt19937_64* rng, int depth, size_t width) {
  Row r;
  r.fields.reserve(width);
  for (size_t i = 0; i < width; ++i) r.fields.push_back(RandomField(rng, depth));
  return r;
}

Field RandomField(std::mt19937_64* rng, int depth) {
  // Nested kinds (label/bag) only while depth remains.
  int max_kind = depth > 0 ? 6 : 4;
  switch (static_cast<int>((*rng)() % (max_kind + 1))) {
    case 0:
      return Field::Null();
    case 1:
      return Field::Int(static_cast<int64_t>((*rng)()));
    case 2: {
      uint64_t bits = (*rng)();
      double v;
      std::memcpy(&v, &bits, sizeof(v));
      if (std::isnan(v)) v = 0.5;  // keep operator==-comparable in bags
      return Field::Real(v);
    }
    case 3: {
      size_t len = (*rng)() % 40;
      std::string s;
      s.reserve(len);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>((*rng)() % 256));  // binary-safe
      }
      return Field::Str(std::move(s));
    }
    case 4:
      return Field::Bool(((*rng)() & 1) != 0);
    case 5: {
      auto label = std::make_shared<RtLabel>();
      size_t n = (*rng)() % 3;
      for (size_t i = 0; i < n; ++i) {
        label->params.emplace_back("p" + std::to_string(i),
                                   RandomField(rng, depth - 1));
      }
      return Field::Label(std::move(label));
    }
    default: {
      std::vector<Row> rows;
      size_t n = (*rng)() % 4;
      for (size_t i = 0; i < n; ++i) {
        rows.push_back(RandomRow(rng, depth - 1, 1 + (*rng)() % 3));
      }
      return Field::Bag(std::move(rows));
    }
  }
}

// gtest ASSERT macros return void; tiny shim for use inside ReadAll.
#define ASSERT_TRUE_OR_RETURN(expr)                            \
  do {                                                         \
    if (!(expr).ok()) {                                        \
      ADD_FAILURE() << (expr).status().ToString();             \
      return out;                                              \
    }                                                          \
  } while (0)

std::vector<Row> ReadAll(const std::string& path,
                         std::vector<uint8_t>* kinds = nullptr) {
  serde::BlockFileReader reader;
  Status open = reader.Open(path);
  EXPECT_TRUE(open.ok()) << open.ToString();
  std::vector<Row> out;
  for (;;) {
    uint8_t kind = 0;
    auto more = reader.ReadBatch(&out, &kind);
    ASSERT_TRUE_OR_RETURN(more);
    if (!more.value()) break;
    if (kinds != nullptr) kinds->push_back(kind);
  }
  EXPECT_TRUE(reader.Close().ok());
  return out;
}

// --- round trips ----------------------------------------------------------

TEST(SerdeRoundTripTest, ScalarExtremes) {
  std::vector<Row> rows;
  Row r;
  r.fields = {
      Field::Null(),
      Field::Int(std::numeric_limits<int64_t>::min()),
      Field::Int(std::numeric_limits<int64_t>::max()),
      Field::Int(0),
      Field::Real(0.0),
      Field::Real(-0.0),
      Field::Real(std::numeric_limits<double>::infinity()),
      Field::Real(-std::numeric_limits<double>::infinity()),
      Field::Real(std::numeric_limits<double>::quiet_NaN()),
      Field::Real(std::numeric_limits<double>::denorm_min()),
      Field::Real(std::numeric_limits<double>::max()),
      Field::Str(""),
      Field::Str(std::string(100000, 'x')),
      Field::Str(std::string("\0\x01\xff binary \n", 12)),
      Field::Bool(true),
      Field::Bool(false),
  };
  rows.push_back(std::move(r));

  std::string path = TestPath("scalars");
  serde::BlockFileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.WriteRows(rows).ok());
  ASSERT_TRUE(writer.Close().ok());

  std::vector<uint8_t> kinds;
  std::vector<Row> back = ReadAll(path, &kinds);
  ASSERT_EQ(kinds, std::vector<uint8_t>{serde::kRecordRowBatch});
  ExpectRowsBitEq(rows, back);
  std::remove(path.c_str());
}

TEST(SerdeRoundTripTest, RecursiveLabelsAndBags) {
  auto inner = std::make_shared<RtLabel>();
  inner->params.emplace_back("k", Field::Int(7));
  auto outer = std::make_shared<RtLabel>();
  outer->params.emplace_back("nested", Field::Label(inner));
  outer->params.emplace_back("s", Field::Str("label-param"));

  std::vector<Row> bag_inner;
  bag_inner.push_back(Row{{Field::Int(1), Field::Str("a")}});
  bag_inner.push_back(Row{{Field::Int(2), Field::Null()}});
  std::vector<Row> bag_outer;
  bag_outer.push_back(Row{{Field::Bag(bag_inner), Field::Bool(true)}});

  std::vector<Row> rows;
  rows.push_back(Row{{Field::Label(outer), Field::Bag(bag_outer),
                      Field::Label(nullptr), Field::Bag(std::vector<Row>{})}});

  std::string path = TestPath("recursive");
  serde::BlockFileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.WriteRows(rows).ok());
  ASSERT_TRUE(writer.Close().ok());

  std::vector<Row> back = ReadAll(path);
  ASSERT_EQ(back.size(), 1u);
  // A null LabelPtr comes back as an empty label; a null BagPtr as an empty
  // bag — value-equal under operator== either way.
  EXPECT_TRUE(rows[0].fields[0] == back[0].fields[0]);
  EXPECT_TRUE(rows[0].fields[1] == back[0].fields[1]);
  EXPECT_TRUE(back[0].fields[2].is_label());
  EXPECT_TRUE(back[0].fields[3].is_bag());
  std::remove(path.c_str());
}

TEST(SerdeRoundTripTest, RandomRowBatchesManySeeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::mt19937_64 rng(seed);
    std::vector<Row> rows;
    size_t n = 1 + rng() % 50;
    for (size_t i = 0; i < n; ++i) {
      rows.push_back(RandomRow(&rng, 2, rng() % 6));
    }
    std::string path = TestPath("random" + std::to_string(seed));
    serde::BlockFileWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    // Split into several records to exercise framing.
    size_t half = rows.size() / 2;
    std::vector<Row> first(rows.begin(), rows.begin() + half);
    std::vector<Row> second(rows.begin() + half, rows.end());
    ASSERT_TRUE(writer.WriteRows(first).ok());
    ASSERT_TRUE(writer.WriteRows(second).ok());
    uint64_t written = writer.bytes_written();
    ASSERT_TRUE(writer.Close().ok());

    serde::BlockFileReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    std::vector<Row> back;
    for (;;) {
      auto more = reader.ReadBatch(&back);
      ASSERT_TRUE(more.ok()) << "seed " << seed << ": "
                             << more.status().ToString();
      if (!more.value()) break;
    }
    // A full scan consumes exactly the bytes the writer produced.
    EXPECT_EQ(reader.bytes_read(), written) << "seed " << seed;
    ASSERT_TRUE(reader.Close().ok());
    ExpectRowsBitEq(rows, back);
    std::remove(path.c_str());
  }
}

TEST(SerdeRoundTripTest, TypedBlockWithNullsAndVariants) {
  Schema schema({{"i", nrc::Type::Int()},
                 {"r", nrc::Type::Real()},
                 {"b", nrc::Type::Bool()},
                 {"s", nrc::Type::String()},
                 {"g", nrc::Type::Bag(
                           nrc::Type::Tuple({{"x", nrc::Type::Int()}}))}});
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) {
    Row r;
    r.fields.push_back(i % 7 == 0 ? Field::Null() : Field::Int(i * 1000));
    r.fields.push_back(i % 5 == 0 ? Field::Null() : Field::Real(i * 0.25));
    r.fields.push_back(i % 3 == 0 ? Field::Null() : Field::Bool(i % 2 == 0));
    r.fields.push_back(i % 11 == 0 ? Field::Null()
                                   : Field::Str("row" + std::to_string(i)));
    std::vector<Row> bag;
    if (i % 4 != 0) bag.push_back(Row{{Field::Int(i)}});
    r.fields.push_back(Field::Bag(std::move(bag)));
    rows.push_back(std::move(r));
  }
  column::PartitionBlock block = column::PartitionBlock::FromRows(schema, rows);
  ASSERT_FALSE(block.ragged());

  std::string path = TestPath("block");
  serde::BlockFileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.WriteBlock(block).ok());
  ASSERT_TRUE(writer.Close().ok());

  std::vector<uint8_t> kinds;
  std::vector<Row> back = ReadAll(path, &kinds);
  ASSERT_EQ(kinds, std::vector<uint8_t>{serde::kRecordBlock});
  // The materialized rows must match what the in-memory block materializes.
  std::vector<Row> expected;
  block.AppendRowsTo(&expected);
  ExpectRowsBitEq(expected, back);
  std::remove(path.c_str());
}

TEST(SerdeRoundTripTest, RaggedBlockFallback) {
  Schema schema({{"a", nrc::Type::Int()}, {"b", nrc::Type::String()}});
  column::PartitionBlock block(schema);
  block.AppendRow(Row{{Field::Int(1), Field::Str("x")}});
  block.AppendRow(Row{{Field::Int(2)}});  // width mismatch demotes to ragged
  block.AppendRow(Row{{Field::Str("y"), Field::Int(3), Field::Bool(false)}});
  ASSERT_TRUE(block.ragged());

  std::string path = TestPath("ragged");
  serde::BlockFileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.WriteBlock(block).ok());
  ASSERT_TRUE(writer.Close().ok());

  std::vector<Row> expected;
  block.AppendRowsTo(&expected);
  std::vector<Row> back = ReadAll(path);
  ExpectRowsBitEq(expected, back);
  std::remove(path.c_str());
}

TEST(SerdeRoundTripTest, MixedRecordKindsInOneFile) {
  Schema schema({{"k", nrc::Type::Int()}});
  std::vector<Row> batch{Row{{Field::Int(10)}}, Row{{Field::Int(20)}}};
  column::PartitionBlock block = column::PartitionBlock::FromRows(
      schema, {Row{{Field::Int(30)}}, Row{{Field::Int(40)}}});

  std::string path = TestPath("mixed");
  serde::BlockFileWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  ASSERT_TRUE(writer.WriteRows(batch).ok());
  ASSERT_TRUE(writer.WriteBlock(block).ok());
  ASSERT_TRUE(writer.WriteRows(batch).ok());
  ASSERT_TRUE(writer.Close().ok());

  std::vector<uint8_t> kinds;
  std::vector<Row> back = ReadAll(path, &kinds);
  EXPECT_EQ(kinds, (std::vector<uint8_t>{serde::kRecordRowBatch,
                                         serde::kRecordBlock,
                                         serde::kRecordRowBatch}));
  ASSERT_EQ(back.size(), 6u);
  EXPECT_EQ(back[2].fields[0].AsInt(), 30);
  EXPECT_EQ(back[5].fields[0].AsInt(), 20);
  std::remove(path.c_str());
}

// --- corruption / truncation ----------------------------------------------

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void DumpFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Reads the whole file; returns the first non-OK status, or OK if the file
/// parses end to end. Must never crash, whatever the bytes.
Status TryReadAll(const std::string& path) {
  serde::BlockFileReader reader;
  Status open = reader.Open(path);
  if (!open.ok()) return open;
  std::vector<Row> out;
  for (;;) {
    auto more = reader.ReadBatch(&out);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
  }
  return reader.Close();
}

std::string WriteSampleFile(const std::string& name) {
  std::vector<Row> rows;
  rows.push_back(Row{{Field::Int(42), Field::Str("hello"), Field::Bool(true),
                      Field::Real(3.25), Field::Null()}});
  rows.push_back(Row{{Field::Int(-1), Field::Str(""), Field::Bool(false),
                      Field::Real(-0.5),
                      Field::Bag({Row{{Field::Int(9)}}})}});
  std::string path = TestPath(name);
  serde::BlockFileWriter writer;
  EXPECT_TRUE(writer.Open(path).ok());
  EXPECT_TRUE(writer.WriteRows(rows).ok());
  EXPECT_TRUE(writer.Close().ok());
  return path;
}

TEST(SerdeCorruptionTest, TruncationAtEveryByteIsCleanlyRejected) {
  std::string path = WriteSampleFile("trunc");
  std::string bytes = SlurpFile(path);
  ASSERT_GT(bytes.size(), 8u);
  std::string tpath = TestPath("trunc_cut");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    DumpFile(tpath, bytes.substr(0, cut));
    Status s = TryReadAll(tpath);
    if (cut == 8) {
      // The one valid prefix: a bare header is a legal empty file.
      EXPECT_TRUE(s.ok()) << s.ToString();
      continue;
    }
    // Every other strict prefix is invalid: the record trailer is
    // load-bearing, so even a cut at a frame boundary loses the checksum.
    EXPECT_FALSE(s.ok()) << "prefix of " << cut << " bytes parsed";
  }
  std::remove(path.c_str());
  std::remove(tpath.c_str());
}

TEST(SerdeCorruptionTest, SingleByteFlipsNeverCrashAndMostlyFail) {
  std::string path = WriteSampleFile("flip");
  std::string bytes = SlurpFile(path);
  std::string fpath = TestPath("flip_one");
  size_t rejected = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5a);
    DumpFile(fpath, corrupt);
    Status s = TryReadAll(fpath);  // must not crash; usually must fail
    if (!s.ok()) ++rejected;
  }
  // The checksum covers the payload and the header is validated, so nearly
  // every flip is caught. (Flips inside the length field can produce a
  // shorter-but-self-consistent frame only by checksum collision.)
  EXPECT_GE(rejected, bytes.size() - 2) << "of " << bytes.size();
  std::remove(path.c_str());
  std::remove(fpath.c_str());
}

TEST(SerdeCorruptionTest, ChecksumTamperNamesTheMismatch) {
  std::string path = WriteSampleFile("sum");
  std::string bytes = SlurpFile(path);
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0xff);
  DumpFile(path, bytes);
  Status s = TryReadAll(path);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.ToString().find("checksum mismatch"), std::string::npos)
      << s.ToString();
  std::remove(path.c_str());
}

TEST(SerdeCorruptionTest, BadMagicIsNotATranceFile) {
  std::string path = TestPath("magic");
  DumpFile(path, "JUNKJUNKJUNKJUNK");
  Status s = TryReadAll(path);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.ToString().find("bad magic"), std::string::npos) << s.ToString();
  std::remove(path.c_str());
}

TEST(SerdeCorruptionTest, FutureVersionIsRejectedByName) {
  std::string path = WriteSampleFile("version");
  std::string bytes = SlurpFile(path);
  // Bump the version halfword (offset 4) to kFormatVersion + 1.
  uint16_t future = serde::kFormatVersion + 1;
  std::memcpy(bytes.data() + 4, &future, sizeof(future));
  DumpFile(path, bytes);
  Status s = TryReadAll(path);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.ToString().find("unsupported format version 2"),
            std::string::npos)
      << s.ToString();
  std::remove(path.c_str());
}

TEST(SerdeCorruptionTest, PayloadParserRejectsStructuralLies) {
  std::vector<Row> out;

  // Unknown record kind.
  Status s = serde::ParseRecordPayload(99, "", &out);
  EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.ToString().find("unknown record kind"), std::string::npos);

  // Unknown field tag inside a row batch.
  std::string payload;
  serde::AppendRowBatchPayload({Row{{Field::Int(1)}}}, &payload);
  std::string bad = payload;
  bad[12] = '\x7f';  // the field tag of the single field
  s = serde::ParseRecordPayload(serde::kRecordRowBatch, bad, &out);
  EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument) << s.ToString();

  // Trailing garbage after a well-formed batch.
  bad = payload + std::string(3, '\0');
  s = serde::ParseRecordPayload(serde::kRecordRowBatch, bad, &out);
  EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.ToString().find("trailing bytes"), std::string::npos)
      << s.ToString();

  // A bag length far past the payload must fail by truncation, not OOM.
  std::string huge_bag;
  huge_bag.push_back('\x06');  // bag tag
  uint64_t lie = uint64_t{1} << 60;
  huge_bag.append(reinterpret_cast<const char*>(&lie), sizeof(lie));
  size_t pos = 0;
  Field f;
  s = serde::ParseField(huge_bag.data(), huge_bag.size(), &pos, &f);
  EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument) << s.ToString();

  // Non-monotonic string offsets in a block column.
  Schema schema({{"s", nrc::Type::String()}});
  column::PartitionBlock block = column::PartitionBlock::FromRows(
      schema, {Row{{Field::Str("ab")}}, Row{{Field::Str("cd")}}});
  std::string bp;
  serde::AppendBlockPayload(block, &bp);
  // Offsets are the last 16 bytes (two u64 ends); swap them.
  std::string swapped = bp;
  std::memcpy(swapped.data() + swapped.size() - 16,
              bp.data() + bp.size() - 8, 8);
  std::memcpy(swapped.data() + swapped.size() - 8,
              bp.data() + bp.size() - 16, 8);
  s = serde::ParseRecordPayload(serde::kRecordBlock, swapped, &out);
  EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.ToString().find("string offsets"), std::string::npos)
      << s.ToString();
}

TEST(SerdeCorruptionTest, ImplausibleRecordLengthIsRejected) {
  std::string path = TestPath("len");
  std::string bytes;
  // Valid header...
  uint32_t magic = serde::kMagic;
  uint16_t version = serde::kFormatVersion, flags = 0;
  bytes.append(reinterpret_cast<const char*>(&magic), 4);
  bytes.append(reinterpret_cast<const char*>(&version), 2);
  bytes.append(reinterpret_cast<const char*>(&flags), 2);
  // ...then a frame claiming an absurd payload length.
  bytes.push_back(static_cast<char>(serde::kRecordRowBatch));
  uint64_t lie = uint64_t{1} << 50;
  bytes.append(reinterpret_cast<const char*>(&lie), 8);
  DumpFile(path, bytes);
  Status s = TryReadAll(path);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.ToString().find("implausible record length"), std::string::npos)
      << s.ToString();
  std::remove(path.c_str());
}

TEST(SerdeFormatTest, HeaderBytesMatchTheSpec) {
  // docs/STORAGE.md promises the first 8 on-disk bytes: "TRNB", version 1
  // little-endian, flags 0.
  std::string path = WriteSampleFile("header");
  std::string bytes = SlurpFile(path);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 4), "TRNB");
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]), 1);
  EXPECT_EQ(static_cast<uint8_t>(bytes[5]), 0);
  EXPECT_EQ(static_cast<uint8_t>(bytes[6]), 0);
  EXPECT_EQ(static_cast<uint8_t>(bytes[7]), 0);
  std::remove(path.c_str());
}

TEST(SerdeFormatTest, Fnv1a64MatchesReferenceVectors) {
  // Standard FNV-1a 64 test vectors (offset basis as default seed).
  EXPECT_EQ(serde::Fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(serde::Fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(serde::Fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace runtime
}  // namespace trance
