// Sequential-vs-parallel determinism: every bulk operator, and a full
// Figure-7 query through both compilation routes, must produce identical
// per-partition rows AND identical JobStats (shuffle bytes, per-partition
// histograms, simulated time) for any thread count. This is the contract
// that makes the thread pool a pure wall-clock optimization: the simulated
// cluster's behavior is a function of the data only.
#include <gtest/gtest.h>

#include <deque>

#include "exec/pipeline.h"
#include "runtime/cluster.h"
#include "runtime/ops.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace trance {
namespace runtime {
namespace {

// Thread counts under test: 1 is the inline sequential path, 4 and 8
// exercise the pool (oversubscribed on small machines, which is fine — the
// contract is independence from the thread count, not from the core count).
const int kThreadCounts[] = {1, 4, 8};

void ExpectSameRows(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.NumPartitions(), b.NumPartitions());
  for (size_t p = 0; p < a.NumPartitions(); ++p) {
    ASSERT_EQ(a.PartitionRowCount(p), b.PartitionRowCount(p))
        << "partition " << p;
    for (size_t i = 0; i < a.PartitionRowCount(p); ++i) {
      const Row ra = a.RowAt(p, i);
      const Row rb = b.RowAt(p, i);
      ASSERT_EQ(ra.fields.size(), rb.fields.size())
          << "partition " << p << " row " << i;
      for (size_t f = 0; f < ra.fields.size(); ++f) {
        EXPECT_EQ(ra.fields[f], rb.fields[f])
            << "partition " << p << " row " << i << " field " << f;
      }
    }
  }
}

/// Full JobStats equality except the wall-clock fields (the only quantities
/// allowed to vary with the thread count).
void ExpectSameStats(const JobStats& a, const JobStats& b) {
  EXPECT_EQ(a.total_shuffle_bytes(), b.total_shuffle_bytes());
  EXPECT_EQ(a.max_stage_shuffle_bytes(), b.max_stage_shuffle_bytes());
  EXPECT_EQ(a.peak_partition_bytes(), b.peak_partition_bytes());
  EXPECT_EQ(a.sim_seconds(), b.sim_seconds());
  ASSERT_EQ(a.stages().size(), b.stages().size());
  for (size_t i = 0; i < a.stages().size(); ++i) {
    const StageStats& sa = a.stages()[i];
    const StageStats& sb = b.stages()[i];
    SCOPED_TRACE("stage " + std::to_string(i) + " (" + sa.op + ")");
    EXPECT_EQ(sa.op, sb.op);
    EXPECT_EQ(sa.scope, sb.scope);
    EXPECT_EQ(sa.rows_in, sb.rows_in);
    EXPECT_EQ(sa.rows_out, sb.rows_out);
    EXPECT_EQ(sa.shuffle_bytes, sb.shuffle_bytes);
    EXPECT_EQ(sa.max_partition_recv_bytes, sb.max_partition_recv_bytes);
    EXPECT_EQ(sa.max_partition_work_bytes, sb.max_partition_work_bytes);
    EXPECT_EQ(sa.total_work_bytes, sb.total_work_bytes);
    EXPECT_EQ(sa.mem_high_water_bytes, sb.mem_high_water_bytes);
    EXPECT_EQ(sa.heavy_key_count, sb.heavy_key_count);
    EXPECT_EQ(sa.movement, sb.movement);
    EXPECT_EQ(sa.partition_send_bytes, sb.partition_send_bytes);
    EXPECT_EQ(sa.partition_recv_bytes, sb.partition_recv_bytes);
    EXPECT_EQ(sa.partition_work_bytes, sb.partition_work_bytes);
    EXPECT_EQ(sa.sim_seconds, sb.sim_seconds);  // exact: same integer inputs
  }
}

ClusterConfig Config(int num_threads) {
  ClusterConfig c;
  c.num_partitions = 8;
  c.num_threads = num_threads;
  return c;
}

Schema KvSchema() {
  return Schema({{"k", nrc::Type::Int()}, {"v", nrc::Type::Int()}});
}

/// Deterministic test relation: keys cycle with deliberate repeats (so
/// joins/groups have fan-out), values are distinct.
std::vector<Row> KvRows(int n, int key_mod) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    rows.push_back(Row({Field::Int(i % key_mod), Field::Int(i)}));
  }
  return rows;
}

/// Runs one instance of every bulk operator on a cluster with the given
/// thread budget; returns every intermediate dataset plus the job stats.
struct OpsRun {
  // deque: later keep() calls must not invalidate references to earlier
  // outputs (operators chain off them).
  std::deque<Dataset> outputs;
  JobStats stats;
};

OpsRun RunAllOps(int num_threads) {
  Cluster cluster(Config(num_threads));
  OpsRun run;
  auto keep = [&run](StatusOr<Dataset> ds) -> const Dataset& {
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    run.outputs.push_back(std::move(ds).value());
    return run.outputs.back();
  };

  const Dataset& src =
      keep(Source(&cluster, KvSchema(), KvRows(200, 17), "in"));
  const Dataset& src2 = keep(SourcePartitioned(
      &cluster, KvSchema(), KvRows(120, 11), {0}, "in2"));

  Schema mapped_schema(
      {{"k", nrc::Type::Int()}, {"v2", nrc::Type::Int()}});
  const Dataset& mapped = keep(MapRows(
      &cluster, src, mapped_schema,
      [](const Row& r) {
        return Row({r.fields[0], Field::Int(r.fields[1].AsInt() * 3)});
      },
      "map"));
  const Dataset& filtered = keep(FilterRows(
      &cluster, mapped,
      [](const Row& r) { return r.fields[1].AsInt() % 2 == 0; }, "filter"));
  const Dataset& flat = keep(FlatMapRows(
      &cluster, filtered, KvSchema(),
      [](const Row& r, std::vector<Row>* out) {
        out->push_back(r);
        if (r.fields[0].AsInt() % 3 == 0) {
          out->push_back(Row({r.fields[0], Field::Int(-1)}));
        }
      },
      "flatmap"));
  const Dataset& parted = keep(Repartition(&cluster, flat, {0}, "repart"));
  keep(Repartition(&cluster, parted, {0}, "repart_noop"));

  keep(HashJoin(&cluster, src, src2, {0}, {0}, JoinType::kInner, "join"));
  keep(HashJoin(&cluster, src, src2, {0}, {0}, JoinType::kLeftOuter,
                "outer_join"));
  keep(BroadcastJoin(&cluster, src, src2, {0}, {0}, JoinType::kInner,
                     "bcast_join"));

  const Dataset& nested =
      keep(NestGroup(&cluster, src, {0}, {1}, "vs", "nest"));
  keep(AddIndexColumn(&cluster, nested, "id", "index"));
  keep(SumAggregate(&cluster, src, {0}, {1}, /*map_side_combine=*/true,
                    "agg_combine"));
  keep(SumAggregate(&cluster, src, {0}, {1}, /*map_side_combine=*/false,
                    "agg_plain"));

  int bag_col = nested.schema.IndexOf("vs");
  EXPECT_GE(bag_col, 0);
  keep(Unnest(&cluster, nested, bag_col, "unnest"));
  keep(OuterUnnest(&cluster, nested, bag_col, "uid", "outer_unnest"));

  keep(UnionAll(&cluster, src, src2, "union"));
  keep(Distinct(&cluster, flat, "distinct"));
  keep(CoGroup(&cluster, src, src2, {0}, {0}, {1}, "matches", "cogroup"));

  run.stats = cluster.stats();
  return run;
}

TEST(ParallelDeterminismTest, AllBulkOperators) {
  OpsRun baseline = RunAllOps(1);
  for (int threads : kThreadCounts) {
    if (threads == 1) continue;
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    OpsRun parallel = RunAllOps(threads);
    ASSERT_EQ(baseline.outputs.size(), parallel.outputs.size());
    for (size_t i = 0; i < baseline.outputs.size(); ++i) {
      SCOPED_TRACE("output " + std::to_string(i));
      ExpectSameRows(baseline.outputs[i], parallel.outputs[i]);
    }
    ExpectSameStats(baseline.stats, parallel.stats);
  }
}

// --- Full Figure-7 query through both compilation routes ------------------

Status RegisterTpch(exec::Executor* executor, const tpch::TpchData& d) {
  struct Entry {
    const tpch::Table* t;
    const char* name;
  };
  for (const Entry& e :
       {Entry{&d.region, "Region"}, Entry{&d.nation, "Nation"},
        Entry{&d.customer, "Customer"}, Entry{&d.orders, "Orders"},
        Entry{&d.lineitem, "Lineitem"}, Entry{&d.part, "Part"}}) {
    TRANCE_ASSIGN_OR_RETURN(
        Dataset ds,
        Source(executor->cluster(), e.t->schema, e.t->rows, e.name));
    executor->Register(e.name, std::move(ds));
    TRANCE_ASSIGN_OR_RETURN(Dataset shredded,
                            Source(executor->cluster(), e.t->schema,
                                   e.t->rows, shred::FlatInputName(e.name)));
    executor->Register(shred::FlatInputName(e.name), std::move(shredded));
  }
  return Status::OK();
}

tpch::TpchData SmallTpch() {
  tpch::TpchConfig cfg;
  cfg.scale = 0.002;
  return tpch::Generate(cfg);
}

TEST(ParallelDeterminismTest, Fig7StandardRoute) {
  tpch::TpchData data = SmallTpch();
  auto program = tpch::FlatToNested(2, tpch::Width::kNarrow);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  Dataset baseline;
  JobStats baseline_stats;
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    Cluster cluster(Config(threads));
    exec::Executor executor(&cluster, {});
    ASSERT_TRUE(RegisterTpch(&executor, data).ok());
    auto out = exec::RunStandard(*program, &executor, {});
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    if (threads == 1) {
      baseline = std::move(out).value();
      baseline_stats = cluster.stats();
    } else {
      ExpectSameRows(baseline, *out);
      ExpectSameStats(baseline_stats, cluster.stats());
    }
  }
}

TEST(ParallelDeterminismTest, Fig7ShreddedRoute) {
  tpch::TpchData data = SmallTpch();
  auto program = tpch::FlatToNested(2, tpch::Width::kNarrow);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  exec::ShreddedRun baseline;
  JobStats baseline_stats;
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    Cluster cluster(Config(threads));
    exec::Executor executor(&cluster, {});
    ASSERT_TRUE(RegisterTpch(&executor, data).ok());
    auto run = exec::RunShredded(*program, &executor, {});
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    if (threads == 1) {
      baseline = std::move(run).value();
      baseline_stats = cluster.stats();
    } else {
      ExpectSameRows(baseline.top, run->top);
      ASSERT_EQ(baseline.dicts.size(), run->dicts.size());
      for (size_t i = 0; i < baseline.dicts.size(); ++i) {
        SCOPED_TRACE("dict " + baseline.dicts[i].first);
        EXPECT_EQ(baseline.dicts[i].first, run->dicts[i].first);
        ExpectSameRows(baseline.dicts[i].second, run->dicts[i].second);
      }
      ExpectSameStats(baseline_stats, cluster.stats());
    }
  }
}

}  // namespace
}  // namespace runtime
}  // namespace trance
