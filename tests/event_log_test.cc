// EventLog: builder rendering, ring bounding + drop counter, the file sink,
// and the determinism contract on real runs — event content (minus `wall_`
// fields) is bit-identical at 1/4/8 threads, and enabling the log does not
// perturb JobStats.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "exec/pipeline.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "runtime/cluster.h"
#include "shred/shredded_type.h"
#include "tpch/generator.h"
#include "tpch/queries.h"

namespace trance {
namespace {

// --- Builder + ring ------------------------------------------------------

TEST(EventLogTest, DisabledLogRecordsNothing) {
  obs::EventLog log;
  ASSERT_FALSE(log.enabled());
  obs::Event(&log, "stage_finish").U64("stage", 1).Emit();
  EXPECT_TRUE(log.Lines().empty());
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLogTest, EventRendersTypedFieldsAsJson) {
  obs::EventLog log;
  log.Enable(true);
  obs::Event(&log, "demo")
      .Str("op", "Join \"x\"")
      .U64("rows", 42)
      .I64("delta", -7)
      .F64("sim", 1.5)
      .Bool("ok", true)
      .Wall("dur_us", 123.0)
      .Emit();
  std::vector<std::string> lines = log.Lines();
  ASSERT_EQ(lines.size(), 1u);
  auto parsed = obs::ParseJson(lines[0]);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << lines[0];
  const obs::JsonValue& v = parsed.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("type")->str, "demo");
  EXPECT_EQ(v.Find("op")->str, "Join \"x\"");
  EXPECT_DOUBLE_EQ(v.Find("rows")->num, 42.0);
  EXPECT_DOUBLE_EQ(v.Find("delta")->num, -7.0);
  EXPECT_DOUBLE_EQ(v.Find("sim")->num, 1.5);
  EXPECT_EQ(v.Find("ok")->kind, obs::JsonValue::Kind::kBool);
  EXPECT_TRUE(v.Find("ok")->b);
  // Wall() forces the wall_ prefix even when the caller omits it.
  EXPECT_EQ(v.Find("dur_us"), nullptr);
  ASSERT_NE(v.Find("wall_dur_us"), nullptr);
  EXPECT_DOUBLE_EQ(v.Find("wall_dur_us")->num, 123.0);
}

TEST(EventLogTest, RingBoundsAndCountsDrops) {
  obs::EventLog log(/*capacity=*/3);
  log.Enable(true);
  for (int i = 0; i < 5; ++i) {
    obs::Event(&log, "tick").U64("i", static_cast<uint64_t>(i)).Emit();
  }
  std::vector<std::string> lines = log.Lines();
  ASSERT_EQ(lines.size(), 3u);  // oldest two evicted
  EXPECT_EQ(log.dropped(), 2u);
  // Survivors are the newest, oldest-first.
  for (int i = 0; i < 3; ++i) {
    auto parsed = obs::ParseJson(lines[i]);
    ASSERT_TRUE(parsed.ok());
    EXPECT_DOUBLE_EQ(parsed.value().Find("i")->num, static_cast<double>(i + 2));
  }
  log.Clear();
  EXPECT_TRUE(log.Lines().empty());
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLogTest, ToJsonlJoinsLines) {
  obs::EventLog log;
  log.Enable(true);
  obs::Event(&log, "a").Emit();
  obs::Event(&log, "b").Emit();
  EXPECT_EQ(log.ToJsonl(), "{\"type\":\"a\"}\n{\"type\":\"b\"}\n");
  log.Clear();
  EXPECT_EQ(log.ToJsonl(), "");
}

TEST(EventLogTest, FileSinkAppendsJsonl) {
  const std::string path = ::testing::TempDir() + "/trance_event_log_test.jsonl";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("TRANCE_EVENT_LOG", path.c_str(), /*overwrite=*/1), 0);
  obs::EventLog log;
  log.ReopenFileSinkFromEnv();
  log.Enable(true);
  obs::Event(&log, "file_test").U64("n", 5).Emit();
  // Detach the sink (flushes + closes) before reading the file back.
  ASSERT_EQ(unsetenv("TRANCE_EVENT_LOG"), 0);
  log.ReopenFileSinkFromEnv();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[256] = {0};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string content(buf, n);
  EXPECT_EQ(content, "{\"type\":\"file_test\",\"n\":5}\n");
  // The ring captured it too.
  EXPECT_EQ(log.Lines().size(), 1u);
  std::remove(path.c_str());
}

// --- Determinism contract on real runs -----------------------------------

Status RegisterTables(exec::Executor* executor, const tpch::TpchData& d) {
  struct E {
    const tpch::Table* t;
    const char* n;
  };
  for (const E& e : {E{&d.region, "Region"}, E{&d.nation, "Nation"},
                     E{&d.customer, "Customer"}, E{&d.orders, "Orders"},
                     E{&d.lineitem, "Lineitem"}, E{&d.part, "Part"}}) {
    TRANCE_ASSIGN_OR_RETURN(
        runtime::Dataset ds,
        runtime::Source(executor->cluster(), e.t->schema, e.t->rows, e.n));
    executor->Register(e.n, ds);
    executor->Register(shred::FlatInputName(e.n), std::move(ds));
  }
  return Status::OK();
}

/// Strips every `"wall_*":<number>` field from a JSONL line by re-rendering
/// it without those keys (parse → filter → stable key order as emitted is
/// lost, so compare via the parsed map instead).
std::map<std::string, std::string> ParsedWithoutWall(const std::string& line) {
  auto parsed = obs::ParseJson(line);
  EXPECT_TRUE(parsed.ok()) << line;
  std::map<std::string, std::string> out;
  if (!parsed.ok()) return out;
  const obs::JsonValue& v = parsed.value();
  EXPECT_TRUE(v.is_object());
  for (const auto& [key, val] : v.obj) {
    if (key.rfind("wall_", 0) == 0) continue;
    switch (val.kind) {
      case obs::JsonValue::Kind::kString:
        out[key] = "s:" + val.str;
        break;
      case obs::JsonValue::Kind::kNumber: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "n:%.17g", val.num);
        out[key] = buf;
        break;
      }
      case obs::JsonValue::Kind::kBool:
        out[key] = val.b ? "b:true" : "b:false";
        break;
      default:
        out[key] = "other";
    }
  }
  return out;
}

struct LoggedRun {
  std::vector<std::map<std::string, std::string>> events;
  std::string stats_debug;
  uint64_t shuffle_bytes = 0;
  size_t stages = 0;
  double sim_seconds = 0;
};

LoggedRun RunWithLog(int num_threads, bool log_enabled) {
  obs::EventLog& log = obs::GlobalEventLog();
  log.Clear();
  log.Enable(log_enabled);
  tpch::TpchConfig tcfg;
  tcfg.scale = 0.002;
  tpch::TpchData data = tpch::Generate(tcfg);
  runtime::ClusterConfig ccfg;
  ccfg.num_partitions = 4;
  ccfg.num_threads = num_threads;
  runtime::Cluster cluster(ccfg);
  exec::Executor executor(&cluster, {});
  EXPECT_TRUE(RegisterTables(&executor, data).ok());
  auto program = tpch::FlatToNested(2, tpch::Width::kNarrow);
  EXPECT_TRUE(program.ok());
  auto out = exec::RunStandard(program.value(), &executor, {});
  EXPECT_TRUE(out.ok()) << out.status().ToString();

  LoggedRun r;
  for (const std::string& line : log.Lines()) {
    r.events.push_back(ParsedWithoutWall(line));
  }
  const runtime::JobStats& stats = cluster.stats();
  r.shuffle_bytes = stats.total_shuffle_bytes();
  r.stages = stats.stages().size();
  r.sim_seconds = stats.sim_seconds();
  log.Enable(false);
  log.Clear();
  return r;
}

TEST(EventLogIntegrationTest, RealRunEmitsWellFormedLifecycleEvents) {
  LoggedRun r = RunWithLog(1, /*log_enabled=*/true);
  ASSERT_FALSE(r.events.empty());
  std::set<std::string> types;
  for (const auto& ev : r.events) {
    auto it = ev.find("type");
    ASSERT_NE(it, ev.end());
    types.insert(it->second);
  }
  // The lifecycle backbone must be present on any successful run.
  EXPECT_TRUE(types.count("s:job_start"));
  EXPECT_TRUE(types.count("s:job_finish"));
  EXPECT_TRUE(types.count("s:stage_finish"));
  EXPECT_TRUE(types.count("s:shuffle"));
  // Every stage_finish carries the join keys and core measures.
  size_t stage_finishes = 0;
  for (const auto& ev : r.events) {
    if (ev.at("type") != "s:stage_finish") continue;
    ++stage_finishes;
    for (const char* key : {"job", "stage", "op", "rows_in", "rows_out",
                            "shuffle_bytes", "sim_seconds"}) {
      EXPECT_TRUE(ev.count(key)) << "stage_finish missing " << key;
    }
  }
  EXPECT_EQ(stage_finishes, r.stages);
  // job_finish reports ok and the count of stages that ran inside the job
  // (Source registration stages run before job_start, under job id 0, so
  // they are excluded from the delta but still present as stage_finish).
  for (const auto& ev : r.events) {
    if (ev.at("type") != "s:job_finish") continue;
    EXPECT_EQ(ev.at("status"), "s:ok");
    size_t in_job = 0;
    for (const auto& sf : r.events) {
      if (sf.at("type") == "s:stage_finish" && sf.at("job") == ev.at("job")) {
        ++in_job;
      }
    }
    EXPECT_EQ(ev.at("stages"), "n:" + std::to_string(in_job));
  }
}

TEST(EventLogIntegrationTest, EventContentIdenticalAcrossThreadCounts) {
  LoggedRun base = RunWithLog(1, /*log_enabled=*/true);
  ASSERT_FALSE(base.events.empty());
  for (int threads : {4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    LoggedRun r = RunWithLog(threads, /*log_enabled=*/true);
    EXPECT_EQ(r.events, base.events);
  }
}

TEST(EventLogIntegrationTest, LoggingDoesNotPerturbJobStats) {
  LoggedRun off = RunWithLog(1, /*log_enabled=*/false);
  LoggedRun on = RunWithLog(1, /*log_enabled=*/true);
  EXPECT_TRUE(off.events.empty());
  EXPECT_FALSE(on.events.empty());
  EXPECT_EQ(on.shuffle_bytes, off.shuffle_bytes);
  EXPECT_EQ(on.stages, off.stages);
  EXPECT_DOUBLE_EQ(on.sim_seconds, off.sim_seconds);
}

}  // namespace
}  // namespace trance
