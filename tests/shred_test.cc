// Tests for the shredded pipeline (Section 4): type shredding, value
// shredding/unshredding, symbolic shredding + materialization (checked on
// the interpreter), domain elimination, and the full distributed shredded
// route against the oracle.
#include <gtest/gtest.h>

#include "exec/pipeline.h"
#include "nrc/builder.h"
#include "nrc/interp.h"
#include "nrc/printer.h"
#include "shred/materialize.h"
#include "shred/shredded_type.h"
#include "shred/value_shredder.h"
#include "util/random.h"

namespace trance {
namespace {

using namespace nrc::dsl;
using nrc::DeepBagEquals;
using nrc::Expr;
using nrc::ExprPtr;
using nrc::Program;
using nrc::Type;
using nrc::TypePtr;
using nrc::Value;

Value T2(const std::string& a, Value va, const std::string& b, Value vb) {
  return Value::Tuple({{a, std::move(va)}, {b, std::move(vb)}});
}

TypePtr CopType() {
  return BagTu(
      {{"cname", Type::String()},
       {"corders",
        BagTu({{"odate", Type::Int()},
               {"oparts",
                BagTu({{"pid", Type::Int()}, {"qty", Type::Real()}})}})}});
}

TypePtr PartType() {
  return BagTu({{"pid", Type::Int()},
                {"pname", Type::String()},
                {"price", Type::Real()}});
}

Value MakePart() {
  return Value::Bag({
      Value::Tuple({{"pid", Value::Int(1)},
                    {"pname", Value::Str("bolt")},
                    {"price", Value::Real(2.0)}}),
      Value::Tuple({{"pid", Value::Int(2)},
                    {"pname", Value::Str("nut")},
                    {"price", Value::Real(1.0)}}),
  });
}

Value MakeCop() {
  auto oparts1 = Value::Bag({T2("pid", Value::Int(1), "qty", Value::Real(3)),
                             T2("pid", Value::Int(2), "qty", Value::Real(4)),
                             T2("pid", Value::Int(1), "qty", Value::Real(1))});
  auto oparts2 = Value::Bag({T2("pid", Value::Int(9), "qty", Value::Real(2))});
  auto corders_a =
      Value::Bag({T2("odate", Value::Int(100), "oparts", oparts1),
                  T2("odate", Value::Int(200), "oparts", Value::EmptyBag()),
                  T2("odate", Value::Int(300), "oparts", oparts2)});
  return Value::Bag(
      {T2("cname", Value::Str("alice"), "corders", corders_a),
       T2("cname", Value::Str("bob"), "corders", Value::EmptyBag())});
}

ExprPtr RunningExampleQuery() {
  return For(
      "cop", V("COP"),
      SngTup(
          {{"cname", V("cop.cname")},
           {"corders",
            For("co", V("cop.corders"),
                SngTup({{"odate", V("co.odate")},
                        {"oparts",
                         SumBy({"pname"}, {"total"},
                               For("op", V("co.oparts"),
                                   For("p", V("Part"),
                                       If(Eq(V("op.pid"), V("p.pid")),
                                          SngTup({{"pname", V("p.pname")},
                                                  {"total",
                                                   Mul(V("op.qty"),
                                                       V("p.price"))}})))))}}))}}));
}

// --- Shredded types --------------------------------------------------------

TEST(ShreddedTypeTest, CopDerivation) {
  auto st = shred::ShredType(CopType());
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  // T^F: corders becomes a label.
  EXPECT_EQ(st->flat->ToString(), "Bag(<cname: string, corders: Label>)");
  // T^D: corders^fun / corders^child, nested oparts dictionary.
  const auto& d = st->dict_tree;
  ASSERT_TRUE(d->is_tuple());
  ASSERT_EQ(d->fields().size(), 2u);
  EXPECT_EQ(d->fields()[0].name, "cordersfun");
  EXPECT_TRUE(d->fields()[0].type->is_dict());
  EXPECT_EQ(d->fields()[1].name, "corderschild");
  EXPECT_TRUE(d->fields()[1].type->is_bag());
}

TEST(ShreddedTypeTest, DictTreeWalkOrder) {
  auto walk = shred::DictTreeWalk(CopType());
  ASSERT_TRUE(walk.ok());
  ASSERT_EQ(walk->size(), 2u);
  EXPECT_EQ((*walk)[0].path, "corders");
  EXPECT_EQ((*walk)[0].parent_path, "");
  EXPECT_EQ((*walk)[1].path, "corders_oparts");
  EXPECT_EQ((*walk)[1].parent_path, "corders");
  EXPECT_EQ((*walk)[1].attr, "oparts");
}

TEST(ShreddedTypeTest, FlatTypeHasNoDicts) {
  auto walk = shred::DictTreeWalk(PartType());
  ASSERT_TRUE(walk.ok());
  EXPECT_TRUE(walk->empty());
  auto st = shred::ShredType(PartType());
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(TypeEquals(st->flat, PartType()));
}

// --- Value shredding -------------------------------------------------------

TEST(ValueShredderTest, RoundTrip) {
  auto sv = shred::ShredValue(MakeCop(), CopType());
  ASSERT_TRUE(sv.ok()) << sv.status().ToString();
  EXPECT_EQ(sv->flat.AsBag().elems.size(), 2u);
  // The corders dictionary holds 3 rows (alice's orders), oparts 4 rows.
  ASSERT_EQ(sv->dicts.size(), 2u);
  EXPECT_EQ(sv->Dict("corders")->AsBag().elems.size(), 3u);
  EXPECT_EQ(sv->Dict("corders_oparts")->AsBag().elems.size(), 4u);

  auto back = shred::UnshredValue(*sv, CopType());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(DeepBagEquals(*back, MakeCop()));
}

TEST(ValueShredderTest, RandomizedRoundTripProperty) {
  // Random two-level nested values must survive shred+unshred.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    std::vector<Value> tops;
    int n = static_cast<int>(rng.Uniform(6));
    for (int i = 0; i < n; ++i) {
      std::vector<Value> orders;
      int no = static_cast<int>(rng.Uniform(4));
      for (int j = 0; j < no; ++j) {
        std::vector<Value> parts;
        int np = static_cast<int>(rng.Uniform(4));
        for (int k = 0; k < np; ++k) {
          parts.push_back(T2("pid", Value::Int(rng.UniformRange(0, 3)), "qty",
                             Value::Real(rng.NextDouble())));
        }
        orders.push_back(T2("odate", Value::Int(rng.UniformRange(0, 2)),
                            "oparts", Value::Bag(parts)));
      }
      tops.push_back(
          T2("cname", Value::Str(rng.NextString(2)), "corders",
             Value::Bag(orders)));
    }
    Value v = Value::Bag(tops);
    auto sv = shred::ShredValue(v, CopType(), static_cast<int64_t>(seed) * 7);
    ASSERT_TRUE(sv.ok());
    auto back = shred::UnshredValue(*sv, CopType());
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(DeepBagEquals(*back, v)) << "seed " << seed;
  }
}

TEST(ValueShredderTest, PairRelationalConversions) {
  auto sv = shred::ShredValue(MakeCop(), CopType());
  ASSERT_TRUE(sv.ok());
  TypePtr elem = Tu({{"odate", Type::Int()}, {"oparts", Type::Label()}});
  auto pairs = shred::RelationalToPairDict(*sv->Dict("corders"), elem);
  ASSERT_TRUE(pairs.ok());
  // alice's single label groups all three orders.
  ASSERT_EQ(pairs->AsBag().elems.size(), 1u);
  auto rel = shred::PairToRelationalDict(*pairs, elem);
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(DeepBagEquals(*rel, *sv->Dict("corders")));
}

// --- Materialized shredded programs on the interpreter ---------------------

/// Runs the source program on the oracle; shreds+materializes; runs the
/// materialized program on the interpreter over shredded inputs; unshreds
/// and compares.
void ExpectShreddedAgreement(const Program& program,
                             const std::map<std::string, Value>& inputs,
                             shred::MaterializeMode mode) {
  nrc::Interpreter interp;
  auto oracle = interp.EvalProgram(program, inputs);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  const Value& expected = oracle->at(program.result().var);

  auto mat = shred::ShredAndMaterialize(program, mode);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();

  std::map<std::string, Value> shredded_inputs;
  int64_t seed = 0;
  for (const auto& in : program.inputs) {
    auto sv = shred::ShredValue(inputs.at(in.name), in.type, seed);
    seed += 1000000;
    ASSERT_TRUE(sv.ok()) << sv.status().ToString();
    shredded_inputs[shred::FlatInputName(in.name)] = sv->flat;
    for (const auto& [path, dict] : sv->dicts) {
      shredded_inputs[shred::DictInputName(in.name, path)] = dict;
    }
  }
  nrc::Interpreter interp2;
  auto result = interp2.EvalProgram(mat->program, shredded_inputs);
  ASSERT_TRUE(result.ok()) << result.status().ToString() << "\n"
                           << nrc::PrintProgram(mat->program);

  if (!mat->output_type->is_bag()) {
    FAIL() << "expected bag output";
  }
  shred::ShreddedValue out;
  out.flat = result->at(mat->top_var);
  for (const auto& d : mat->dicts) {
    out.dicts.emplace_back(d.path, result->at(d.var));
  }
  auto nested = shred::UnshredValue(out, mat->output_type);
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  EXPECT_TRUE(DeepBagEquals(*nested, expected))
      << "oracle:  " << nrc::Canonicalize(expected).ToString()
      << "\nshredded:" << nrc::Canonicalize(*nested).ToString()
      << "\nmaterialized program:\n" << nrc::PrintProgram(mat->program);
}

Program RunningExampleProgram() {
  Program p;
  p.inputs = {{"COP", CopType()}, {"Part", PartType()}};
  p.assignments.push_back({"Q", RunningExampleQuery()});
  return p;
}

TEST(MaterializeTest, RunningExampleWithDomainElimination) {
  ExpectShreddedAgreement(RunningExampleProgram(),
                          {{"COP", MakeCop()}, {"Part", MakePart()}},
                          shred::MaterializeMode::kDomainElimination);
}

TEST(MaterializeTest, RunningExampleBaseline) {
  ExpectShreddedAgreement(RunningExampleProgram(),
                          {{"COP", MakeCop()}, {"Part", MakePart()}},
                          shred::MaterializeMode::kBaseline);
}

TEST(MaterializeTest, DomainEliminationAppliesRule1) {
  // With elimination, the materialized program must not contain any label
  // domain assignments for the nested-input query.
  auto mat = shred::ShredAndMaterialize(
      RunningExampleProgram(), shred::MaterializeMode::kDomainElimination);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  for (const auto& a : mat->program.assignments) {
    EXPECT_EQ(a.var.find("_LD_"), std::string::npos)
        << "unexpected label domain " << a.var;
  }
  EXPECT_FALSE(mat->interpreter_only);
}

TEST(MaterializeTest, BaselineEmitsLabelDomains) {
  auto mat = shred::ShredAndMaterialize(RunningExampleProgram(),
                                        shred::MaterializeMode::kBaseline);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  int domains = 0;
  for (const auto& a : mat->program.assignments) {
    if (a.var.find("_LD_") != std::string::npos) ++domains;
  }
  EXPECT_EQ(domains, 2);  // one per dictionary level
}

Program FlatToNestedProgram() {
  Program p;
  p.inputs = {
      {"Cust", BagTu({{"ck", Type::Int()}, {"cname", Type::String()}})},
      {"Ord", BagTu({{"ck", Type::Int()}, {"odate", Type::Int()}})}};
  p.assignments.push_back(
      {"Q", For("c", V("Cust"),
                SngTup({{"cname", V("c.cname")},
                        {"orders",
                         For("o", V("Ord"),
                             If(Eq(V("o.ck"), V("c.ck")),
                                SngTup({{"odate", V("o.odate")}})))}}))});
  return p;
}

std::map<std::string, Value> FlatToNestedInputs() {
  Value cust = Value::Bag({T2("ck", Value::Int(1), "cname", Value::Str("a")),
                           T2("ck", Value::Int(2), "cname", Value::Str("b")),
                           T2("ck", Value::Int(3), "cname", Value::Str("c"))});
  Value ord = Value::Bag({T2("ck", Value::Int(1), "odate", Value::Int(7)),
                          T2("ck", Value::Int(1), "odate", Value::Int(8)),
                          T2("ck", Value::Int(2), "odate", Value::Int(9))});
  return {{"Cust", cust}, {"Ord", ord}};
}

TEST(MaterializeTest, FlatToNestedUsesRule2) {
  ExpectShreddedAgreement(FlatToNestedProgram(), FlatToNestedInputs(),
                          shred::MaterializeMode::kDomainElimination);
  auto mat = shred::ShredAndMaterialize(
      FlatToNestedProgram(), shred::MaterializeMode::kDomainElimination);
  ASSERT_TRUE(mat.ok());
  for (const auto& a : mat->program.assignments) {
    EXPECT_EQ(a.var.find("_LD_"), std::string::npos);
  }
}

TEST(MaterializeTest, NestedToFlatHasNoDicts) {
  Program p;
  p.inputs = {{"COP", CopType()}, {"Part", PartType()}};
  p.assignments.push_back(
      {"Q", SumBy({"cname"}, {"total"},
                  For("cop", V("COP"),
                      For("co", V("cop.corders"),
                          For("op", V("co.oparts"),
                              For("pp", V("Part"),
                                  If(Eq(V("op.pid"), V("pp.pid")),
                                     SngTup({{"cname", V("cop.cname")},
                                             {"total",
                                              Mul(V("op.qty"),
                                                  V("pp.price"))}})))))))});
  auto mat = shred::ShredAndMaterialize(
      p, shred::MaterializeMode::kDomainElimination);
  ASSERT_TRUE(mat.ok()) << mat.status().ToString();
  EXPECT_TRUE(mat->dicts.empty());

  // Interpreter agreement (flat output: compare directly).
  nrc::Interpreter interp;
  std::map<std::string, Value> inputs{{"COP", MakeCop()},
                                      {"Part", MakePart()}};
  auto oracle = interp.EvalProgram(p, inputs);
  ASSERT_TRUE(oracle.ok());
  std::map<std::string, Value> shredded_inputs;
  int64_t seed = 0;
  for (const auto& in : p.inputs) {
    auto sv = shred::ShredValue(inputs.at(in.name), in.type, seed);
    seed += 1000000;
    ASSERT_TRUE(sv.ok());
    shredded_inputs[shred::FlatInputName(in.name)] = sv->flat;
    for (const auto& [path, dict] : sv->dicts) {
      shredded_inputs[shred::DictInputName(in.name, path)] = dict;
    }
  }
  nrc::Interpreter interp2;
  auto got = interp2.EvalProgram(mat->program, shredded_inputs);
  ASSERT_TRUE(got.ok()) << got.status().ToString() << "\n"
                        << nrc::PrintProgram(mat->program);
  EXPECT_TRUE(DeepBagEquals(got->at(mat->top_var), oracle->at("Q")));
}

// --- Full distributed shredded route ---------------------------------------

void ExpectShreddedRuntimeAgreement(
    const Program& program, const std::map<std::string, Value>& inputs,
    exec::PipelineOptions options = {},
    shred::MaterializeMode mode = shred::MaterializeMode::kDomainElimination) {
  nrc::Interpreter interp;
  auto oracle = interp.EvalProgram(program, inputs);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  const Value& expected = oracle->at(program.result().var);

  runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 5});
  auto got =
      exec::RunShreddedOnValues(program, inputs, &cluster, options, mode);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(DeepBagEquals(expected, *got))
      << "oracle: " << nrc::Canonicalize(expected).ToString()
      << "\nshred:  " << nrc::Canonicalize(*got).ToString();
}

TEST(ShreddedPipelineTest, RunningExample) {
  ExpectShreddedRuntimeAgreement(RunningExampleProgram(),
                                 {{"COP", MakeCop()}, {"Part", MakePart()}});
}

TEST(ShreddedPipelineTest, RunningExampleBaselineMaterialization) {
  ExpectShreddedRuntimeAgreement(RunningExampleProgram(),
                                 {{"COP", MakeCop()}, {"Part", MakePart()}},
                                 {}, shred::MaterializeMode::kBaseline);
}

TEST(ShreddedPipelineTest, FlatToNested) {
  ExpectShreddedRuntimeAgreement(FlatToNestedProgram(), FlatToNestedInputs());
}

TEST(ShreddedPipelineTest, SkewAwareShreddedAgrees) {
  exec::PipelineOptions opts;
  opts.exec.skew_aware = true;
  opts.exec.auto_broadcast = false;
  ExpectShreddedRuntimeAgreement(RunningExampleProgram(),
                                 {{"COP", MakeCop()}, {"Part", MakePart()}},
                                 opts);
}

TEST(ShreddedPipelineTest, RandomizedNestedToNestedProperty) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    // Random COP / Part instances.
    std::vector<Value> parts;
    for (int i = 0; i < 5; ++i) {
      parts.push_back(Value::Tuple({{"pid", Value::Int(i)},
                                    {"pname", Value::Str(rng.NextString(3))},
                                    {"price", Value::Real(rng.NextDouble())}}));
    }
    std::vector<Value> cops;
    int nc = 1 + static_cast<int>(rng.Uniform(4));
    for (int c = 0; c < nc; ++c) {
      std::vector<Value> orders;
      int no = static_cast<int>(rng.Uniform(4));
      for (int o = 0; o < no; ++o) {
        std::vector<Value> ops;
        int np = static_cast<int>(rng.Uniform(4));
        for (int k = 0; k < np; ++k) {
          ops.push_back(T2("pid", Value::Int(rng.UniformRange(0, 7)), "qty",
                           Value::Real(1 + rng.NextDouble())));
        }
        orders.push_back(T2("odate", Value::Int(rng.UniformRange(1, 9)),
                            "oparts", Value::Bag(ops)));
      }
      cops.push_back(T2("cname", Value::Str(rng.NextString(3)), "corders",
                        Value::Bag(orders)));
    }
    ExpectShreddedRuntimeAgreement(
        RunningExampleProgram(),
        {{"COP", Value::Bag(cops)}, {"Part", Value::Bag(parts)}});
  }
}

}  // namespace
}  // namespace trance
