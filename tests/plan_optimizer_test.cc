// Tests for the unnesting stage's plan structure and the optimizer rules:
// join detection, outer-variant selection at nested levels, cogroup fusion,
// column pruning (including join-output narrowing), aggregation pushdown,
// and OuterSelect lowering semantics.
#include <gtest/gtest.h>

#include "exec/pipeline.h"
#include "nrc/builder.h"
#include "nrc/interp.h"
#include "plan/optimizer.h"
#include "plan/printer.h"
#include "plan/unnest.h"

namespace trance {
namespace {

using namespace nrc::dsl;
using nrc::Expr;
using nrc::ExprPtr;
using nrc::Type;
using nrc::TypePtr;
using nrc::Value;
using plan::PlanNode;
using plan::PlanPtr;

int CountKind(const PlanPtr& p, PlanNode::Kind kind) {
  int n = p->kind() == kind ? 1 : 0;
  for (size_t i = 0; i < p->num_children(); ++i) {
    n += CountKind(p->child(i), kind);
  }
  return n;
}

nrc::TypeEnv FlatEnv() {
  return {{"R", BagTu({{"k", Type::Int()}, {"a", Type::Int()}})},
          {"S", BagTu({{"k", Type::Int()}, {"b", Type::Int()}})}};
}

TEST(UnnestTest, JoinDetectedFromEqualityFilter) {
  plan::Unnester u(FlatEnv());
  ExprPtr q = For("r", V("R"),
                  For("s", V("S"),
                      If(Eq(V("r.k"), V("s.k")),
                         SngTup({{"a", V("r.a")}, {"b", V("s.b")}}))));
  auto p = u.Compile(q);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(CountKind(*p, PlanNode::Kind::kJoin), 1);
  EXPECT_EQ(CountKind(*p, PlanNode::Kind::kSelect), 0)
      << plan::PrintPlan(*p);
}

TEST(UnnestTest, AndConjunctionSplitsIntoCompositeJoinKey) {
  nrc::TypeEnv env{
      {"R", BagTu({{"k1", Type::Int()}, {"k2", Type::Int()},
                   {"a", Type::Int()}})},
      {"S", BagTu({{"k1", Type::Int()}, {"k2", Type::Int()},
                   {"b", Type::Int()}})}};
  plan::Unnester u(env);
  ExprPtr q = For("r", V("R"),
                  For("s", V("S"),
                      If(And(Eq(V("r.k1"), V("s.k1")),
                             Eq(V("r.k2"), V("s.k2"))),
                         SngTup({{"a", V("r.a")}, {"b", V("s.b")}}))));
  auto p = u.Compile(q);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  // One two-key join, no cross product, no residual select.
  std::function<const PlanNode*(const PlanPtr&)> find_join =
      [&](const PlanPtr& n) -> const PlanNode* {
    if (n->kind() == PlanNode::Kind::kJoin) return n.get();
    for (size_t i = 0; i < n->num_children(); ++i) {
      if (auto* j = find_join(n->child(i))) return j;
    }
    return nullptr;
  };
  const PlanNode* join = find_join(*p);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->left_keys().size(), 2u);
  EXPECT_EQ(CountKind(*p, PlanNode::Kind::kSelect), 0);
}

TEST(UnnestTest, NestedLevelUsesOuterOperatorsAndIds) {
  nrc::TypeEnv env{
      {"Cust", BagTu({{"ck", Type::Int()}, {"cname", Type::String()}})},
      {"Ord", BagTu({{"ck", Type::Int()}, {"odate", Type::Int()}})}};
  plan::Unnester u(env);
  ExprPtr q = For("c", V("Cust"),
                  SngTup({{"cname", V("c.cname")},
                          {"orders",
                           For("o", V("Ord"),
                               If(Eq(V("o.ck"), V("c.ck")),
                                  SngTup({{"odate", V("o.odate")}})))}}));
  auto p = u.Compile(q);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  // Entering the nested level attaches a unique id and the join is outer.
  EXPECT_EQ(CountKind(*p, PlanNode::Kind::kAddIndex), 1);
  std::function<bool(const PlanPtr&)> has_outer_join =
      [&](const PlanPtr& n) -> bool {
    if (n->kind() == PlanNode::Kind::kJoin && n->outer()) return true;
    for (size_t i = 0; i < n->num_children(); ++i) {
      if (has_outer_join(n->child(i))) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_outer_join(*p)) << plan::PrintPlan(*p);
  EXPECT_EQ(CountKind(*p, PlanNode::Kind::kNest), 1);
}

TEST(OptimizerTest, CoGroupFusionFiresOnNestOverOuterJoin) {
  nrc::TypeEnv env{
      {"Cust", BagTu({{"ck", Type::Int()}, {"cname", Type::String()}})},
      {"Ord", BagTu({{"ck", Type::Int()}, {"odate", Type::Int()}})}};
  plan::Unnester u(env);
  ExprPtr q = For("c", V("Cust"),
                  SngTup({{"cname", V("c.cname")},
                          {"orders",
                           For("o", V("Ord"),
                               If(Eq(V("o.ck"), V("c.ck")),
                                  SngTup({{"odate", V("o.odate")}})))}}));
  PlanPtr raw = u.Compile(q).ValueOrDie();
  plan::OptimizerOptions on;
  PlanPtr fused = plan::Optimize(raw, env, on).ValueOrDie();
  EXPECT_EQ(CountKind(fused, PlanNode::Kind::kCoGroup), 1)
      << plan::PrintPlan(fused);
  EXPECT_EQ(CountKind(fused, PlanNode::Kind::kNest), 0);

  plan::OptimizerOptions off;
  off.enable_cogroup = false;
  PlanPtr unfused = plan::Optimize(raw, env, off).ValueOrDie();
  EXPECT_EQ(CountKind(unfused, PlanNode::Kind::kCoGroup), 0);
  EXPECT_EQ(CountKind(unfused, PlanNode::Kind::kNest), 1);
}

TEST(OptimizerTest, ColumnPruningNarrowsScans) {
  // Only r.a is needed; the scan's renaming Project must shrink to k (join
  // key) and a.
  plan::Unnester u(FlatEnv());
  ExprPtr q = For("r", V("R"),
                  For("s", V("S"),
                      If(Eq(V("r.k"), V("s.k")), SngTup({{"a", V("r.a")}}))));
  PlanPtr raw = u.Compile(q).ValueOrDie();
  PlanPtr opt = plan::Optimize(raw, FlatEnv(), {}).ValueOrDie();
  // Find the Project over Scan(S): it should keep only the key column.
  std::function<const PlanNode*(const PlanPtr&)> find =
      [&](const PlanPtr& n) -> const PlanNode* {
    if (n->kind() == PlanNode::Kind::kProject &&
        n->child(0)->kind() == PlanNode::Kind::kScan &&
        n->child(0)->relation() == "S") {
      return n.get();
    }
    for (size_t i = 0; i < n->num_children(); ++i) {
      if (auto* f = find(n->child(i))) return f;
    }
    return nullptr;
  };
  const PlanNode* proj = find(opt);
  ASSERT_NE(proj, nullptr) << plan::PrintPlan(opt);
  EXPECT_EQ(proj->columns().size(), 1u);
  EXPECT_EQ(proj->columns()[0].name, "s.k");
}

TEST(OptimizerTest, AggPushdownIntroducesPartialSum) {
  // sumBy over a join: the pushed plan has two Nest+ operators.
  nrc::TypeEnv env{
      {"L", BagTu({{"pid", Type::Int()}, {"qty", Type::Real()}})},
      {"P", BagTu({{"pid", Type::Int()}, {"pname", Type::String()},
                   {"price", Type::Real()}})}};
  plan::Unnester u(env);
  ExprPtr q = SumBy({"pname"}, {"total"},
                    For("l", V("L"),
                        For("p", V("P"),
                            If(Eq(V("l.pid"), V("p.pid")),
                               SngTup({{"pname", V("p.pname")},
                                       {"total", Mul(V("l.qty"),
                                                     V("p.price"))}})))));
  PlanPtr raw = u.Compile(q).ValueOrDie();
  plan::OptimizerOptions opts;
  opts.enable_agg_pushdown = true;
  opts.enable_column_pruning = false;
  PlanPtr pushed = plan::Optimize(raw, env, opts).ValueOrDie();
  EXPECT_EQ(CountKind(pushed, PlanNode::Kind::kNest), 2)
      << plan::PrintPlan(pushed);
  // The partial sum must sit below the join.
  std::function<bool(const PlanPtr&, bool)> nest_below_join =
      [&](const PlanPtr& n, bool under_join) -> bool {
    if (n->kind() == PlanNode::Kind::kNest && under_join) return true;
    for (size_t i = 0; i < n->num_children(); ++i) {
      if (nest_below_join(n->child(i),
                          under_join ||
                              n->kind() == PlanNode::Kind::kJoin)) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(nest_below_join(pushed, false));
}

TEST(OuterSelectTest, PreservesOuterTuplesAsEmptyBags) {
  // A residual filter at a nested level (not fusable into the join) must not
  // drop customers: sel.v > threshold filters order lines, and customers
  // whose lines all fail keep empty bags.
  nrc::Program p;
  p.inputs = {
      {"Cust", BagTu({{"ck", Type::Int()}, {"cname", Type::String()}})},
      {"Nested",
       BagTu({{"ck", Type::Int()},
              {"lines", BagTu({{"v", Type::Int()}})}})}};
  p.assignments.push_back(
      {"Q",
       For("c", V("Cust"),
           SngTup({{"cname", V("c.cname")},
                   {"big",
                    For("n", V("Nested"),
                        If(Eq(V("n.ck"), V("c.ck")),
                           For("l", V("n.lines"),
                               If(Gt(V("l.v"), I(10)),
                                  SngTup({{"v", V("l.v")}})))))}}))});
  Value cust = Value::Bag(
      {Value::Tuple({{"ck", Value::Int(1)}, {"cname", Value::Str("a")}}),
       Value::Tuple({{"ck", Value::Int(2)}, {"cname", Value::Str("b")}})});
  Value nested = Value::Bag(
      {Value::Tuple({{"ck", Value::Int(1)},
                     {"lines",
                      Value::Bag({Value::Tuple({{"v", Value::Int(5)}}),
                                  Value::Tuple({{"v", Value::Int(20)}})})}}),
       Value::Tuple({{"ck", Value::Int(2)},
                     {"lines",
                      Value::Bag({Value::Tuple({{"v", Value::Int(3)}})})}})});
  std::map<std::string, Value> inputs{{"Cust", cust}, {"Nested", nested}};

  nrc::Interpreter interp;
  auto oracle = interp.EvalProgram(p, inputs);
  ASSERT_TRUE(oracle.ok());
  runtime::Cluster cluster(runtime::ClusterConfig{.num_partitions = 4});
  auto got = exec::RunStandardOnValues(p, inputs, &cluster, {});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(nrc::DeepBagEquals(oracle->at("Q"), *got))
      << nrc::Canonicalize(*got).ToString();
  // Customer b must be present with an empty bag.
  bool saw_b = false;
  for (const auto& t : got->AsBag().elems) {
    if (t.FieldOrDie("cname").AsString() == "b") {
      saw_b = true;
      EXPECT_TRUE(t.FieldOrDie("big").AsBag().elems.empty());
    }
  }
  EXPECT_TRUE(saw_b);
}

TEST(UnnestTest, UnsupportedShapesReportNotImplemented) {
  plan::Unnester u(FlatEnv());
  // Two bag-valued attributes in one tuple constructor.
  ExprPtr q = For("r", V("R"),
                  SngTup({{"x", For("s", V("S"),
                                    If(Eq(V("s.k"), V("r.k")),
                                       SngTup({{"b", V("s.b")}})))},
                          {"y", For("s2", V("S"),
                                    If(Eq(V("s2.k"), V("r.k")),
                                       SngTup({{"b", V("s2.b")}})))}}));
  auto p = u.Compile(q);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotImplemented);
}

}  // namespace
}  // namespace trance
