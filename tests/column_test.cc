// Columnar partition-block tests (ctest label `columnar`).
//
// Part 1 — randomized round-trip property: rows drawn over every Field kind
// (ints, reals including -0.0, bools, strings of odd lengths, NULLs,
// labels, nested bags, plus deliberate type-mismatches that demote a typed
// column to the variant fallback) survive FromRows -> RowAt / ToRows
// byte-identically, and the block's accounting mirrors the row path
// exactly: CellHash == Field::Hash, CellBytes == Field::DeepSize,
// RowBytesAt == RowDeepSize, HashRowOn == RowHashOn. Width-changing rows
// demote the block to the ragged fallback without losing anything.
//
// Part 2 — the satellite APIs: the column-wise KeyEncoder
// Begin/Append/Finish produces byte- and hash-identical keys to
// Encode(row, cols); Schema::FromBagType rejects null and non-bag types
// with its documented TypeError and Schema::Require names the missing
// column and the schema; Partitioning::IsHashOn handles permutations and
// duplicate column lists on both the small (alloc-free) and large (sorted)
// paths; Dataset::Collect and ToBlocks/FromBlocks are thread-count
// invariant.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/column.h"
#include "runtime/dataset.h"
#include "runtime/field.h"
#include "runtime/key_codec.h"
#include "runtime/schema.h"
#include "util/random.h"

namespace trance {
namespace {

using runtime::Dataset;
using runtime::Field;
using runtime::Partitioning;
using runtime::Row;
using runtime::Schema;
using runtime::column::AnyColumn;
using runtime::column::PartitionBlock;
namespace key_codec = runtime::key_codec;

Schema MixedSchema() {
  return Schema({{"i", nrc::Type::Int()},
                 {"r", nrc::Type::Real()},
                 {"b", nrc::Type::Bool()},
                 {"s", nrc::Type::String()},
                 {"g", nrc::Type::Bag(nrc::Type::Tuple(
                           {{"x", nrc::Type::Int()}}))}});
}

/// A random field for column `col` of MixedSchema: mostly type-matching,
/// sometimes NULL, sometimes deliberately mismatched (forcing the variant
/// demotion path), including the hash edge cases (-0.0, empty strings).
Field RandomField(Rng* rng, size_t col) {
  if (rng->NextBool(0.15)) return Field::Null();
  if (rng->NextBool(0.1)) {
    // Type-unstable cell: legal in the row path, must demote losslessly.
    return Field::Str("stray-" + std::to_string(rng->Uniform(5)));
  }
  switch (col) {
    case 0:
      return Field::Int(static_cast<int64_t>(rng->NextU64()));
    case 1:
      if (rng->NextBool(0.1)) return Field::Real(-0.0);
      return Field::Real(rng->UniformReal(-1e6, 1e6));
    case 2:
      return Field::Bool(rng->NextBool());
    case 3:
      return Field::Str(rng->NextString(rng->Uniform(23)));
    default: {
      std::vector<Row> bag;
      for (uint64_t i = 0, n = rng->Uniform(3); i < n; ++i) {
        bag.push_back(Row({Field::Int(rng->UniformRange(0, 9))}));
      }
      return Field::Bag(std::move(bag));
    }
  }
}

std::vector<Row> RandomRows(Rng* rng, size_t n, size_t width) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Field> fields;
    for (size_t c = 0; c < width; ++c) fields.push_back(RandomField(rng, c));
    rows.push_back(Row(std::move(fields)));
  }
  return rows;
}

void ExpectRowsEqual(const std::vector<Row>& a, const std::vector<Row>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].fields.size(), b[i].fields.size()) << "row " << i;
    for (size_t f = 0; f < a[i].fields.size(); ++f) {
      EXPECT_EQ(a[i].fields[f], b[i].fields[f]) << "row " << i << " field "
                                                << f;
    }
  }
}

// --- Part 1: round-trip and accounting equivalence -----------------------

TEST(ColumnBlockTest, RandomizedRoundTripAndAccounting) {
  Schema schema = MixedSchema();
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    std::vector<Row> rows = RandomRows(&rng, 500, schema.size());
    PartitionBlock block = PartitionBlock::FromRows(schema, rows);
    ASSERT_EQ(block.NumRows(), rows.size());
    EXPECT_FALSE(block.ragged());

    ExpectRowsEqual(block.ToRows(), rows);
    const std::vector<int> all_cols{0, 1, 2, 3, 4};
    for (size_t i = 0; i < rows.size(); ++i) {
      Row back = block.RowAt(i);
      ASSERT_EQ(back.fields.size(), rows[i].fields.size()) << "row " << i;
      for (size_t c = 0; c < rows[i].fields.size(); ++c) {
        const Field& want = rows[i].fields[c];
        EXPECT_EQ(block.FieldAt(i, c), want) << "row " << i << " col " << c;
        EXPECT_EQ(block.IsNull(i, c), want.is_null());
        EXPECT_EQ(block.col(c).CellHash(i), want.Hash())
            << "row " << i << " col " << c;
        EXPECT_EQ(block.col(c).CellBytes(i), want.DeepSize())
            << "row " << i << " col " << c;
      }
      EXPECT_EQ(block.RowBytesAt(i), runtime::RowDeepSize(rows[i]));
      EXPECT_EQ(block.HashRowOn(i, all_cols),
                runtime::RowHashOn(rows[i], all_cols));
      EXPECT_EQ(block.HashRowOn(i, {3, 0}),
                runtime::RowHashOn(rows[i], {3, 0}));
    }
  }
}

TEST(ColumnBlockTest, TypedColumnsUseFlatStorage) {
  Schema schema({{"k", nrc::Type::Int()}, {"v", nrc::Type::Real()}});
  PartitionBlock block(schema);
  for (int64_t i = 0; i < 100; ++i) {
    block.AppendRow(Row({Field::Int(i), Field::Real(i * 0.5)}));
  }
  ASSERT_EQ(block.col(0).kind(), AnyColumn::Kind::kInt64);
  ASSERT_EQ(block.col(1).kind(), AnyColumn::Kind::kReal);
  const int64_t* ks = block.col(0).ints();
  const double* vs = block.col(1).reals();
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ks[i], i);
    EXPECT_EQ(vs[i], i * 0.5);
  }
  EXPECT_GT(block.ByteFootprint(), 0u);
}

TEST(ColumnBlockTest, TypeMismatchDemotesToVariantLosslessly) {
  Schema schema({{"k", nrc::Type::Int()}});
  PartitionBlock block(schema);
  block.AppendRow(Row({Field::Int(1)}));
  block.AppendRow(Row({Field::Int(2)}));
  ASSERT_EQ(block.col(0).kind(), AnyColumn::Kind::kInt64);
  block.AppendRow(Row({Field::Str("not an int")}));
  EXPECT_EQ(block.col(0).kind(), AnyColumn::Kind::kVariant);
  EXPECT_EQ(block.FieldAt(0, 0), Field::Int(1));
  EXPECT_EQ(block.FieldAt(1, 0), Field::Int(2));
  EXPECT_EQ(block.FieldAt(2, 0), Field::Str("not an int"));
}

TEST(ColumnBlockTest, WidthMismatchDemotesToRaggedLosslessly) {
  Schema schema({{"a", nrc::Type::Int()}, {"b", nrc::Type::Int()}});
  std::vector<Row> rows;
  rows.push_back(Row({Field::Int(1), Field::Int(2)}));
  rows.push_back(Row({Field::Int(3)}));  // width change mid-pipeline
  rows.push_back(Row({Field::Int(4), Field::Int(5), Field::Int(6)}));
  PartitionBlock block = PartitionBlock::FromRows(schema, rows);
  EXPECT_TRUE(block.ragged());
  ExpectRowsEqual(block.ToRows(), rows);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(block.RowBytesAt(i), runtime::RowDeepSize(rows[i]));
    EXPECT_EQ(block.HashRowOn(i, {0}), runtime::RowHashOn(rows[i], {0}));
  }
}

TEST(ColumnBlockTest, AppendRowFromMatchesAppendRow) {
  Schema schema = MixedSchema();
  Rng rng(77);
  std::vector<Row> rows = RandomRows(&rng, 200, schema.size());
  PartitionBlock src = PartitionBlock::FromRows(schema, rows);
  PartitionBlock via_copy(schema);
  PartitionBlock via_rows(schema);
  for (size_t i = 0; i < rows.size(); ++i) {
    via_copy.AppendRowFrom(src, i);
    via_rows.AppendRow(rows[i]);
  }
  ExpectRowsEqual(via_copy.ToRows(), rows);
  ExpectRowsEqual(via_rows.ToRows(), rows);
  EXPECT_EQ(via_copy.TotalRowBytes(), via_rows.TotalRowBytes());
}

TEST(ColumnBlockTest, NullBitmapTracksNulls) {
  Schema schema({{"s", nrc::Type::String()}});
  PartitionBlock block(schema);
  block.AppendRow(Row({Field::Str("x")}));
  block.AppendRow(Row({Field::Null()}));
  block.AppendRow(Row({Field::Str("")}));
  EXPECT_FALSE(block.IsNull(0, 0));
  EXPECT_TRUE(block.IsNull(1, 0));
  EXPECT_FALSE(block.IsNull(2, 0));
  EXPECT_EQ(block.FieldAt(1, 0), Field::Null());
  EXPECT_EQ(block.col(0).CellHash(1), Field::Null().Hash());
  EXPECT_EQ(block.col(0).CellBytes(1), Field::Null().DeepSize());
}

// --- Part 2: satellite APIs ----------------------------------------------

TEST(KeyEncoderColumnTest, IncrementalMatchesEncode) {
  Schema schema = MixedSchema();
  Rng rng(99);
  // Keys over the scalar columns only (bags are rejected by the codec).
  const std::vector<int> cols{0, 1, 2, 3};
  std::vector<Row> rows = RandomRows(&rng, 300, schema.size());
  key_codec::KeyEncoder whole;
  key_codec::KeyEncoder incremental;
  for (const Row& r : rows) {
    bool has_bag = false;
    for (int c : cols) has_bag |= r.fields[c].is_bag();
    if (has_bag) continue;
    auto want = whole.Encode(r, cols);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    key_codec::EncodedKey expected = key_codec::Materialize(*want);
    incremental.Begin();
    for (int c : cols) {
      ASSERT_TRUE(incremental.Append(r.fields[c]).ok());
    }
    key_codec::EncodedKeyView got = incremental.Finish();
    EXPECT_EQ(got.hash, expected.hash);
    EXPECT_EQ(std::string(got.bytes), expected.bytes);
  }
  // Byte accounting matches too: both encoders saw the same keys.
  EXPECT_EQ(incremental.bytes_encoded(), whole.bytes_encoded());
}

TEST(SchemaTest, FromBagTypeRejectsNullAndNonBag) {
  auto null_result = Schema::FromBagType(nullptr);
  ASSERT_FALSE(null_result.ok());
  EXPECT_NE(null_result.status().ToString().find(
                "Schema::FromBagType: not a bag type"),
            std::string::npos)
      << null_result.status().ToString();

  auto scalar_result = Schema::FromBagType(nrc::Type::Int());
  ASSERT_FALSE(scalar_result.ok());
  EXPECT_NE(scalar_result.status().ToString().find(
                "Schema::FromBagType: not a bag type"),
            std::string::npos)
      << scalar_result.status().ToString();

  auto tuple_result =
      Schema::FromBagType(nrc::Type::Tuple({{"a", nrc::Type::Int()}}));
  ASSERT_FALSE(tuple_result.ok());

  // Bag of scalars is accepted as the single anonymous "_value" column.
  auto bag_of_scalars = Schema::FromBagType(nrc::Type::Bag(nrc::Type::Int()));
  ASSERT_TRUE(bag_of_scalars.ok());
  ASSERT_EQ(bag_of_scalars->size(), 1u);
  EXPECT_EQ(bag_of_scalars->col(0).name, "_value");
}

TEST(SchemaTest, RequireNamesColumnAndSchemaInError) {
  Schema s({{"a", nrc::Type::Int()}, {"b", nrc::Type::String()}});
  ASSERT_TRUE(s.Require("a").ok());
  EXPECT_EQ(s.Require("b").ValueOrDie(), 1);
  auto missing = s.Require("zzz");
  ASSERT_FALSE(missing.ok());
  std::string msg = missing.status().ToString();
  EXPECT_NE(msg.find("schema has no column 'zzz'"), std::string::npos) << msg;
  // The error names the schema so the caller can see what was available.
  EXPECT_NE(msg.find("a: "), std::string::npos) << msg;
  EXPECT_NE(msg.find("b: "), std::string::npos) << msg;
}

TEST(PartitioningTest, IsHashOnHandlesPermutationsAndDuplicates) {
  Partitioning h = Partitioning::Hash({1, 3});
  EXPECT_TRUE(h.IsHashOn({1, 3}));
  EXPECT_TRUE(h.IsHashOn({3, 1}));
  EXPECT_FALSE(h.IsHashOn({1, 2}));
  EXPECT_FALSE(h.IsHashOn({1}));
  EXPECT_FALSE(h.IsHashOn({1, 3, 3}));
  EXPECT_FALSE(Partitioning::None().IsHashOn({1, 3}));

  // Duplicate-bearing lists: {1,1,2} is not a permutation of {1,2,2}.
  Partitioning dup = Partitioning::Hash({1, 1, 2});
  EXPECT_TRUE(dup.IsHashOn({1, 2, 1}));
  EXPECT_TRUE(dup.IsHashOn({2, 1, 1}));
  EXPECT_FALSE(dup.IsHashOn({1, 2, 2}));

  // > 4 columns exercises the sorted fallback path.
  Partitioning wide = Partitioning::Hash({5, 4, 3, 2, 1});
  EXPECT_TRUE(wide.IsHashOn({1, 2, 3, 4, 5}));
  EXPECT_TRUE(wide.IsHashOn({5, 4, 3, 2, 1}));
  EXPECT_FALSE(wide.IsHashOn({1, 2, 3, 4, 6}));
  Partitioning wide_dup = Partitioning::Hash({1, 1, 2, 3, 4});
  EXPECT_TRUE(wide_dup.IsHashOn({4, 3, 2, 1, 1}));
  EXPECT_FALSE(wide_dup.IsHashOn({4, 3, 2, 2, 1}));
}

Dataset MakeDataset(Rng* rng, size_t nparts, size_t rows_per) {
  Dataset d;
  d.schema = MixedSchema();
  d.store.InitRows(nparts);
  for (size_t p = 0; p < nparts; ++p) {
    d.store.rows(p) = RandomRows(rng, rows_per, d.schema.size());
  }
  return d;
}

TEST(DatasetTest, CollectIsThreadCountInvariant) {
  Rng rng(5);
  Dataset d = MakeDataset(&rng, 7, 100);
  std::vector<Row> serial = d.Collect();
  std::vector<Row> parallel4 = d.Collect(4);
  std::vector<Row> parallel8 = d.Collect(8);
  ASSERT_EQ(serial.size(), d.NumRows());
  ExpectRowsEqual(serial, parallel4);
  ExpectRowsEqual(serial, parallel8);
  // Partition order: partition p's rows precede partition p+1's.
  size_t at = 0;
  for (size_t p = 0; p < d.NumPartitions(); ++p) {
    for (const Row& r : d.PartitionRows(p)) {
      ASSERT_EQ(serial[at].fields.size(), r.fields.size());
      for (size_t f = 0; f < r.fields.size(); ++f) {
        EXPECT_EQ(serial[at].fields[f], r.fields[f]);
      }
      ++at;
    }
  }
}

TEST(PartitionStoreTest, RowsBlocksRoundTrip) {
  // The storage abstraction under Dataset: the same row sequence held in
  // either residence serves identical reads through every accessor —
  // RowCount, RowAt, MaterializeRows, AppendRowsTo, PartitionRowBytes —
  // including empty partitions and rows that force the variant and ragged
  // block fallbacks (RandomRows mixes types and NULLs deliberately).
  Rng rng(11);
  Schema schema = MixedSchema();
  const size_t nparts = 5;
  runtime::PartitionStore rows_store;
  rows_store.InitRows(nparts);
  runtime::PartitionStore block_store;
  block_store.InitBlocks(nparts, schema);
  for (size_t p = 0; p < nparts; ++p) {
    // Partition 2 stays empty on purpose.
    std::vector<Row> rows =
        p == 2 ? std::vector<Row>{} : RandomRows(&rng, 60 + 10 * p, schema.size());
    for (const Row& r : rows) block_store.block(p).AppendRow(r);
    rows_store.rows(p) = std::move(rows);
  }
  EXPECT_FALSE(rows_store.block_resident());
  EXPECT_TRUE(block_store.block_resident());
  ASSERT_EQ(rows_store.NumPartitions(), block_store.NumPartitions());
  EXPECT_EQ(rows_store.NumRows(), block_store.NumRows());
  for (size_t p = 0; p < nparts; ++p) {
    SCOPED_TRACE("partition " + std::to_string(p));
    ASSERT_EQ(rows_store.RowCount(p), block_store.RowCount(p));
    EXPECT_EQ(rows_store.PartitionRowBytes(p), block_store.PartitionRowBytes(p));
    ExpectRowsEqual(rows_store.MaterializeRows(p),
                    block_store.MaterializeRows(p));
    std::vector<Row> from_rows;
    rows_store.AppendRowsTo(p, &from_rows);
    std::vector<Row> from_blocks;
    block_store.AppendRowsTo(p, &from_blocks);
    ExpectRowsEqual(from_rows, from_blocks);
    for (size_t i = 0; i < rows_store.RowCount(p); ++i) {
      ExpectRowsEqual({rows_store.RowAt(p, i)}, {block_store.RowAt(p, i)});
    }
    // Clear preserves residence and empties the partition.
    block_store.Clear(p);
    EXPECT_TRUE(block_store.block_resident());
    EXPECT_EQ(block_store.RowCount(p), 0u);
  }
}

TEST(PartitionStoreTest, ByteAccountingParityBlockVsRow) {
  // Satellite invariant: Dataset::PartitionBytes / DeepSizeBytes report the
  // same numbers whichever residence holds the rows (RowBytesAt mirrors
  // RowDeepSize cell by cell), at any thread count. Randomized over the
  // full Field-kind mix, variant/ragged demotions included.
  Rng rng(12);
  Schema schema = MixedSchema();
  const size_t nparts = 6;
  Dataset by_rows;
  by_rows.schema = schema;
  by_rows.store.InitRows(nparts);
  Dataset by_blocks;
  by_blocks.schema = schema;
  by_blocks.store.InitBlocks(nparts, schema);
  for (size_t p = 0; p < nparts; ++p) {
    std::vector<Row> rows = RandomRows(&rng, 40 + 17 * p, schema.size());
    for (const Row& r : rows) by_blocks.store.block(p).AppendRow(r);
    by_rows.store.rows(p) = std::move(rows);
  }
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    EXPECT_EQ(by_rows.PartitionBytes(threads), by_blocks.PartitionBytes(threads));
    EXPECT_EQ(by_rows.DeepSizeBytes(threads), by_blocks.DeepSizeBytes(threads));
  }
}

TEST(DatasetTest, ToBlocksFromBlocksRoundTrips) {
  Rng rng(6);
  Dataset d = MakeDataset(&rng, 5, 80);
  for (int threads : {1, 4}) {
    auto blocks = d.ToBlocks(threads);
    ASSERT_EQ(blocks.size(), d.NumPartitions());
    Dataset back = Dataset::FromBlocks(d.schema, blocks,
                                       Partitioning::None(), threads);
    ASSERT_EQ(back.NumPartitions(), d.NumPartitions());
    for (size_t p = 0; p < d.NumPartitions(); ++p) {
      SCOPED_TRACE("partition " + std::to_string(p));
      ExpectRowsEqual(back.PartitionRows(p), d.PartitionRows(p));
    }
  }
}

}  // namespace
}  // namespace trance
